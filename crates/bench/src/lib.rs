//! Shared harness for regenerating the paper's tables and figures.
//!
//! Experiment index (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * **Table I** — `cargo run -p sde-bench --release --bin table1`
//! * **Figure 10 (a–f)** — `cargo run -p sde-bench --release --bin fig10`
//! * microbenchmarks & ablations — `cargo bench -p sde-bench`
//!
//! The harness reproduces the *shape* of the paper's results (who wins,
//! by what rough factor, where COB must be aborted), not the absolute
//! numbers of the authors' 2011 Xeon testbed; see DESIGN.md for the
//! substitutions.

use sde_core::check::Checker;
use sde_core::minimize::MinimizeReport;
use sde_core::oracle::ConformanceReport;
use sde_core::testgen::TestGenReport;
use sde_core::{Algorithm, Budget, Engine, EngineSnapshot, RunOutcome, RunReport, Scenario};
use sde_net::{FailureConfig, FaultPlan, NodeId, Topology};
use sde_os::apps::collect::{self, CollectConfig};
use sde_os::apps::persist::{self, PersistConfig};
use sde_os::apps::sense::{self, SenseConfig};
use sde_os::apps::token::{self, TokenConfig};
use sde_os::layout;
use sde_symbolic::{Expr, ExprRef, Solver, Width};
use std::path::{Path, PathBuf};

/// The paper's §IV-A scenario for a `side × side` grid: corner-to-corner
/// static route, one packet per second for ten seconds, symbolic drop of
/// one packet at every route node and route neighbor.
pub fn paper_scenario(side: u16) -> Scenario {
    let topology = Topology::grid(side, side);
    let cfg = CollectConfig::paper_grid(side, side);
    let failures =
        FailureConfig::new().drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
    let programs = collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(10_000)
}

/// The solver-bound companion scenario for a `side × side` grid: the
/// [`sense`] workload (symbolic sensor readings classified at every route
/// hop), no failure model. Execution forks on *data* and nearly all wall
/// time goes to constraint solving, which is the regime
/// [`Engine::run_parallel`](sde_core::Engine::run_parallel) accelerates —
/// the `workers` axis of the engine bench runs on this scenario.
pub fn symbolic_grid(side: u16) -> Scenario {
    let topology = Topology::grid(side, side);
    let cfg = SenseConfig::paper_grid(side, side);
    let duration = cfg.interval_ms * (u64::from(cfg.packet_count) + 2);
    let programs = sense::programs(&topology, &cfg);
    Scenario::new(topology, programs).with_duration_ms(duration)
}

/// Named scenarios for the `oracle` conformance bin — deliberately tiny,
/// so the exhaustive ground-truth enumeration finishes in (at most)
/// thousands of concrete replays.
///
/// # Panics
///
/// Panics on an unknown preset name — a typo must not silently run the
/// wrong experiment.
pub fn oracle_scenario(preset: &str) -> Scenario {
    let line = |k: u16, drop_nodes: &[u16], packets: u16| {
        let topology = Topology::line(k);
        let cfg = CollectConfig {
            source: NodeId(k - 1),
            sink: NodeId(0),
            interval_ms: 1000,
            packet_count: packets,
            strict_sink: false,
        };
        let failures = FailureConfig::new().with_drops(drop_nodes.iter().map(|n| NodeId(*n)), 1);
        let programs = collect::programs(&topology, &cfg);
        Scenario::new(topology, programs)
            .with_failures(failures)
            .with_duration_ms(1000 * u64::from(packets) + 2000)
            .with_history_tracking(true)
    };
    // Drop budgets sit on *receiving* nodes (the failure decision is made
    // at delivery time), so the source node never spends one.
    match preset {
        "tiny" => line(2, &[0], 1),
        "line3" => line(3, &[0, 1], 2),
        "grid" => {
            let topology = Topology::grid(2, 2);
            let cfg = CollectConfig {
                source: NodeId(3),
                sink: NodeId(0),
                interval_ms: 1000,
                packet_count: 2,
                strict_sink: false,
            };
            let failures = FailureConfig::new()
                .drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
            let programs = collect::programs(&topology, &cfg);
            Scenario::new(topology, programs)
                .with_failures(failures)
                .with_duration_ms(4000)
                .with_history_tracking(true)
        }
        other => panic!("unknown oracle preset {other:?} (expected tiny|line3|grid)"),
    }
}

/// Named demo workloads for the `repro` bin and `table1 --check`
/// (DESIGN.md §12):
///
/// * `token` — the token-passing app on a 2×2 grid, route `0→1→3→2`.
///   With the seeded bug (`fixed == false`) a hand-off leaks the
///   persistent ownership flag, so a crash-recovery of node 0 under
///   `--faults crashrec` (or `all`) resurrects stale ownership and
///   violates `unique-token-owner`.
/// * `persist` — the crash-persistence app on a 3-node line. Its
///   invariants *hold*: this is the negative control that must exit 0.
///
/// # Panics
///
/// Panics on an unknown demo name.
pub fn demo_scenario(name: &str, fixed: bool) -> Scenario {
    match name {
        "token" => {
            let topology = Topology::grid(2, 2);
            let cfg = TokenConfig {
                route: vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)],
                leak_persistent_flag: !fixed,
                ..TokenConfig::default()
            };
            let programs = token::programs(&topology, &cfg);
            Scenario::new(topology, programs).with_duration_ms(2000)
        }
        "persist" => {
            let topology = Topology::line(3);
            let cfg = PersistConfig::default();
            let programs = persist::programs(&topology, &cfg);
            Scenario::new(topology, programs).with_duration_ms(1000)
        }
        other => panic!("unknown demo {other:?} (expected token|persist)"),
    }
}

/// The invariants checked against [`demo_scenario`]'s workloads.
///
/// # Panics
///
/// Panics on an unknown demo name.
pub fn demo_checker(name: &str) -> Checker {
    match name {
        "token" => Checker::new().cross_node("unique-token-owner", |views| {
            // Violated when any two nodes of one consistent global
            // snapshot both believe they hold the token.
            let owns: Vec<ExprRef> = views
                .iter()
                .map(|v| Expr::ne(v.memory_u16(layout::TOKEN_OWN), Expr::const_(0, Width::W16)))
                .collect();
            let mut violated: Option<ExprRef> = None;
            for i in 0..owns.len() {
                for j in i + 1..owns.len() {
                    let both = Expr::and_bool(owns[i].clone(), owns[j].clone());
                    violated = Some(match violated {
                        Some(v) => Expr::or_bool(v, both),
                        None => both,
                    });
                }
            }
            violated
        }),
        "persist" => Checker::new()
            .node_local("boot-count-positive", |view| {
                // Every booted node has incremented its persistent boot
                // counter at least once — zero means the persistent
                // window was lost.
                Some(Expr::eq(
                    view.memory_u16(layout::BOOT_COUNT),
                    Expr::const_(0, Width::W16),
                ))
            })
            .cross_node("seq-high-water-bounded", |views| {
                // No receiver's persisted high-water mark may exceed
                // what the source actually transmitted.
                let source = views.iter().find(|v| v.node == NodeId(0))?;
                let sent = source.memory_u16(layout::PERSIST_SEQ);
                let mut violated: Option<ExprRef> = None;
                for v in views.iter().filter(|v| v.node != NodeId(0)) {
                    let above = Expr::ugt(v.memory_u16(layout::PERSIST_SEQ), sent.clone());
                    violated = Some(match violated {
                        Some(prev) => Expr::or_bool(prev, above),
                        None => above,
                    });
                }
                violated
            }),
        other => panic!("unknown demo {other:?} (expected token|persist)"),
    }
}

/// The invariant `table1 --check` evaluates on the collect/sense
/// workloads: the sink can never have accepted more packets than the
/// source transmitted (drops only lose packets; the table workloads run
/// no duplication axis). Holds on every dscenario of a correct engine —
/// the check exercises the invariant layer at benchmark scale rather
/// than hunting a seeded bug.
pub fn workload_checker(source: NodeId, sink: NodeId) -> Checker {
    Checker::new().cross_node("sink-within-source", move |views| {
        let sink_view = views.iter().find(|v| v.node == sink)?;
        let source_view = views.iter().find(|v| v.node == source)?;
        Some(Expr::ugt(
            sink_view.memory_u16(layout::RECEIVED),
            source_view.memory_u16(layout::SEQ),
        ))
    })
}

/// One axis of the extended fault model (DESIGN.md §11) — the unit the
/// bench bins' `--faults` flag and the oracle's per-axis sweep work in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAxis {
    /// Symbolic partition of every link into the sink (node 0), healing
    /// at one of two symbolic candidate times.
    Partition,
    /// Symbolic extra delivery delay on the sink.
    Latency,
    /// Symbolic payload-byte corruption on the sink.
    Corrupt,
    /// Symbolic crash-with-recovery on the sink (persistent window
    /// survives, volatile state resets).
    CrashRec,
}

impl FaultAxis {
    /// Every axis, in `--faults all` order.
    pub const ALL: [FaultAxis; 4] = [
        FaultAxis::Partition,
        FaultAxis::Latency,
        FaultAxis::Corrupt,
        FaultAxis::CrashRec,
    ];

    /// Stable name for CLI values, labels and filenames.
    pub fn name(self) -> &'static str {
        match self {
            FaultAxis::Partition => "partition",
            FaultAxis::Latency => "latency",
            FaultAxis::Corrupt => "corrupt",
            FaultAxis::CrashRec => "crashrec",
        }
    }

    /// Parses a `--faults` value: `all`, or a comma-separated subset of
    /// `partition,latency,corrupt,crashrec`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown axis name — a typo'd axis must not silently
    /// run a faultless experiment.
    pub fn parse_list(s: &str) -> Vec<FaultAxis> {
        if s == "all" {
            return FaultAxis::ALL.to_vec();
        }
        s.split(',')
            .map(|axis| match axis.trim() {
                "partition" => FaultAxis::Partition,
                "latency" => FaultAxis::Latency,
                "corrupt" => FaultAxis::Corrupt,
                "crashrec" => FaultAxis::CrashRec,
                other => panic!(
                    "unknown fault axis {other:?} \
                     (expected partition|latency|corrupt|crashrec|all)"
                ),
            })
            .collect()
    }

    /// Joins axis names for labels: `partition+latency`.
    pub fn join(axes: &[FaultAxis]) -> String {
        axes.iter().map(|a| a.name()).collect::<Vec<_>>().join("+")
    }
}

/// Applies `axes` of the extended fault model to `scenario`, composing
/// one [`FaultPlan`] sized from the scenario itself:
///
/// * **partition** cuts every link into node 0 (the sink of every bench
///   workload — all traffic terminates there, so the cut is guaranteed
///   to be exercised), healing at `duration/4` or `duration/2` — two
///   candidates, so the heal time is itself one symbolic choice.
/// * **latency** delays deliveries into node 0 by `3 × link_latency_ms`
///   (budget 1).
/// * **corrupt** flips one symbolic byte of node 0's deliveries
///   (budget 1).
/// * **crashrec** lets node 0 crash-and-recover once; the persistent
///   window is the `sde-os` flash layout
///   ([`sde_os::layout::PERSIST_BASE`]).
pub fn with_fault_axes(scenario: Scenario, axes: &[FaultAxis]) -> Scenario {
    if axes.is_empty() {
        return scenario;
    }
    let sink = NodeId(0);
    let mut plan = FaultPlan::new();
    for axis in axes {
        plan = match axis {
            FaultAxis::Partition => {
                let cut: Vec<(NodeId, NodeId)> = scenario
                    .topology
                    .neighbors(sink)
                    .map(|n| (sink, n))
                    .collect();
                let d = scenario.duration_ms;
                plan.with_partition(cut, [d / 4, d / 2])
            }
            FaultAxis::Latency => plan.with_latency([sink], scenario.link_latency_ms * 3, 1),
            FaultAxis::Corrupt => plan.with_corruption([sink], 1),
            FaultAxis::CrashRec => plan.with_crash_recovery(
                [sink],
                1,
                sde_os::layout::PERSIST_BASE,
                sde_os::layout::PERSIST_SIZE,
            ),
        };
    }
    scenario.with_faults(plan)
}

/// Renders a self-contained repro artifact for a minimized violation
/// (DESIGN.md §12): a JSON array of flat objects — a header carrying
/// enough to rebuild the scenario (demo name, fault axes, both durations,
/// fault-plan fingerprint) and diff the outcome (`bug_digest`), then one
/// object per witness entry. Rendering is a pure function of the
/// [`MinimizeReport`], and minimization replays are serial, so the bytes
/// are identical no matter how many workers found the violation.
pub fn render_artifact(
    demo: &str,
    fixed: bool,
    algorithm: &str,
    base_duration_ms: u64,
    report: &MinimizeReport,
    digest: u64,
) -> String {
    let axes = report.scenario.faults.active_axes().join(",");
    let mut lines = vec![format!(
        "  {{\"version\": 1, \"demo\": \"{demo}\", \"fixed\": {fixed}, \
         \"algorithm\": \"{algorithm}\", \"invariant\": \"{}\", \"faults\": \"{axes}\", \
         \"base_duration_ms\": {base_duration_ms}, \"duration_ms\": {}, \
         \"fault_fingerprint\": \"{:#018x}\", \"bug_digest\": \"{digest:#018x}\", \
         \"entries\": {}}}",
        report.violation.invariant,
        report.final_duration_ms,
        report.scenario.faults.fingerprint(),
        report.assignment.len(),
    )];
    for ((node, name, occurrence), value) in &report.assignment {
        lines.push(format!(
            "  {{\"node\": {node}, \"name\": \"{name}\", \
             \"occurrence\": {occurrence}, \"value\": {value}}}"
        ));
    }
    format!("[\n{}\n]\n", lines.join(",\n"))
}

/// Which parallel engine a bench run uses when `--workers` asks for one —
/// the `--mode` axis of the bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParMode {
    /// Speculative cache-warming ([`Engine::run_parallel`]): workers warm
    /// the shared solver, the authoritative pass stays serial.
    #[default]
    Spec,
    /// Sharded frontier exploration ([`Engine::run_sharded`], DESIGN.md
    /// §13): workers authoritatively execute disjoint subtrees; a
    /// deterministic merge keeps the report bit-identical to serial.
    Shard,
}

impl ParMode {
    /// Parses a `--mode` value.
    ///
    /// # Panics
    ///
    /// Panics on anything but `spec` or `shard`.
    pub fn parse(s: &str) -> ParMode {
        match s {
            "spec" => ParMode::Spec,
            "shard" => ParMode::Shard,
            other => panic!("invalid --mode {other:?} (expected spec or shard)"),
        }
    }

    /// Reads `--mode` from the parsed arguments; defaults to `spec`.
    pub fn from_args(args: &Args) -> ParMode {
        args.get::<String>("mode")
            .map(|s| ParMode::parse(&s))
            .unwrap_or_default()
    }

    /// Stable name for filenames and labels.
    pub fn name(self) -> &'static str {
        match self {
            ParMode::Spec => "spec",
            ParMode::Shard => "shard",
        }
    }

    /// Consumes `engine` through this mode's parallel entry point.
    pub fn run(self, engine: Engine, workers: usize) -> RunReport {
        match self {
            ParMode::Spec => engine.run_parallel(workers),
            ParMode::Shard => engine.run_sharded(workers),
        }
    }

    /// Drives `engine` one budgeted segment through this mode's
    /// resumable entry point.
    pub fn run_until(self, engine: &mut Engine, workers: usize, budget: Budget) -> RunOutcome {
        match self {
            ParMode::Spec => engine.run_until_parallel(workers, budget),
            ParMode::Shard => engine.run_until_sharded(workers, budget),
        }
    }
}

/// Writes a run's canonical equivalence key (wall times and solver
/// counters excluded — exactly [`RunReport::equivalence_key`]) to
/// `path`. The bytes are identical for any worker count and either
/// parallel mode, so CI can `cmp` the files across a sweep.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn write_equivalence_report(path: &Path, report: &RunReport) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, report.equivalence_key())
}

/// Per-algorithm run parameters for one experiment.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Abort cap on total created states (the paper's 40 GB analogue).
    pub state_cap: usize,
    /// Sampling period in processed events.
    pub sample_every: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            state_cap: 120_000,
            sample_every: 256,
        }
    }
}

/// Runs `scenario` under `algorithm` with the given limits.
pub fn run_with_limits(scenario: &Scenario, algorithm: Algorithm, limits: RunLimits) -> RunReport {
    run_with_limits_workers(scenario, algorithm, limits, None)
}

/// Like [`run_with_limits`], but optionally through the parallel engine:
/// `Some(w)` runs [`Engine::run_parallel`] with `w` speculative workers
/// (the report is bit-identical, plus [`RunReport::parallel`]
/// (sde_core::RunReport::parallel) counters); `None` runs sequentially.
pub fn run_with_limits_workers(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
) -> RunReport {
    run_with_limits_layers(scenario, algorithm, limits, workers, SolverLayers::Full)
}

/// Which layers of the incremental solver stack (DESIGN.md §6) a bench run
/// enables — the on/off axis of the cache-ablation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverLayers {
    /// Per-group exact caching plus the counterexample cache (default).
    Full,
    /// Whole-query exact matching only: independence-partitioned group
    /// caching and counterexample reuse both disabled. This is the
    /// pre-incremental baseline the acceptance criteria compare against.
    ExactOnly,
    /// Every cache layer disabled; each query is solved from scratch.
    Off,
}

impl SolverLayers {
    /// Parses a `--layers` value.
    ///
    /// # Panics
    ///
    /// Panics on anything but `full`, `exact`, or `off`.
    pub fn parse(s: &str) -> SolverLayers {
        match s {
            "full" => SolverLayers::Full,
            "exact" => SolverLayers::ExactOnly,
            "off" => SolverLayers::Off,
            other => panic!("invalid --layers {other:?} (expected full, exact, or off)"),
        }
    }

    /// Stable name for filenames and JSON labels.
    pub fn name(self) -> &'static str {
        match self {
            SolverLayers::Full => "full",
            SolverLayers::ExactOnly => "exact",
            SolverLayers::Off => "off",
        }
    }

    /// Applies this configuration to a solver's ablation toggles.
    pub fn apply(self, solver: &Solver) {
        match self {
            SolverLayers::Full => {}
            SolverLayers::ExactOnly => {
                solver.set_group_caching(false);
                solver.set_cex_caching(false);
            }
            SolverLayers::Off => {
                solver.set_caching(false);
                solver.set_cex_caching(false);
            }
        }
    }
}

/// Like [`run_with_limits_workers`], with an explicit solver-layer
/// configuration applied before the run starts.
pub fn run_with_limits_layers(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
    layers: SolverLayers,
) -> RunReport {
    run_with_limits_dedup(
        scenario,
        algorithm,
        limits,
        workers,
        layers,
        false,
        ParMode::Spec,
    )
}

/// The fully-configurable run entry point: [`run_with_limits_layers`]
/// plus the `--dedup` axis — online duplicate-dispatch pruning
/// ([`Engine::set_dedup`], DESIGN.md §10). Canonical outputs are
/// dedup-invariant (pinned by `tests/dedup_equivalence.rs`); the payoff
/// shows up in [`RunReport::states_executed`](sde_core::RunReport) and
/// [`RunReport::dedup`](sde_core::RunReport).
#[allow(clippy::too_many_arguments)]
pub fn run_with_limits_dedup(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
    layers: SolverLayers,
    dedup: bool,
    mode: ParMode,
) -> RunReport {
    let s = scenario
        .clone()
        .with_state_cap(limits.state_cap)
        .with_sample_every(limits.sample_every);
    let engine = Engine::new(s, algorithm).with_dedup(dedup);
    layers.apply(engine.solver());
    match workers {
        None => engine.run(),
        Some(w) => mode.run(engine, w),
    }
}

/// Checkpoint/resume options shared by the bench bins (DESIGN.md §8):
/// `--checkpoint-every N` (snapshot every N dispatched events),
/// `--snapshot-dir D` (where `<label>.snap` files land),
/// `--resume PATH` (a snapshot file, or a directory holding per-label
/// snapshots), `--stop-after S` (exit after S snapshots — the CI
/// "interrupted run" stand-in for a kill).
#[derive(Debug, Clone)]
pub struct Checkpointing {
    /// Snapshot cadence in dispatched events; 0 = never (resume-only).
    pub every: u64,
    /// Directory snapshot files are written to.
    pub dir: PathBuf,
    /// Snapshot file — or directory of `<label>.snap` files — to resume
    /// from.
    pub resume: Option<PathBuf>,
    /// Stop the run after writing this many snapshots.
    pub stop_after: Option<u64>,
}

impl Checkpointing {
    /// Parses the checkpoint flags; `None` when neither
    /// `--checkpoint-every` nor `--resume` was passed.
    pub fn from_args(args: &Args) -> Option<Checkpointing> {
        let every: Option<u64> = args.get("checkpoint-every");
        let resume: Option<String> = args.get("resume");
        if every.is_none() && resume.is_none() {
            return None;
        }
        Some(Checkpointing {
            every: every.unwrap_or(0),
            dir: PathBuf::from(
                args.get::<String>("snapshot-dir")
                    .unwrap_or_else(|| "bench_out/snapshots".to_string()),
            ),
            resume: resume.map(PathBuf::from),
            stop_after: args.get("stop-after"),
        })
    }

    /// Where this run's snapshot lands: `<dir>/<label>.snap`.
    pub fn snapshot_path(&self, label: &str) -> PathBuf {
        self.dir.join(format!("{label}.snap"))
    }

    /// The snapshot to resume `label` from, when one applies: `--resume`
    /// pointed at a file uses it directly; pointed at a directory, the
    /// per-label file is used when present.
    pub fn resume_path(&self, label: &str) -> Option<PathBuf> {
        let p = self.resume.as_ref()?;
        if p.is_dir() {
            let candidate = p.join(format!("{label}.snap"));
            candidate.is_file().then_some(candidate)
        } else {
            Some(p.clone())
        }
    }
}

fn io_invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Loads and decodes a snapshot file with bin-friendly error messages.
///
/// # Errors
///
/// I/O errors reading the file; [`std::io::ErrorKind::InvalidData`] when
/// the bytes are not a valid snapshot (corruption, wrong version).
pub fn load_snapshot(path: &Path) -> std::io::Result<EngineSnapshot> {
    let bytes = std::fs::read(path)?;
    EngineSnapshot::from_bytes(&bytes).map_err(|e| io_invalid(format!("{}: {e}", path.display())))
}

/// [`run_with_limits_layers`] with checkpoint/resume: optionally resumes
/// from `ckpt.resume`, then drives the run in `ckpt.every`-event
/// segments, writing a snapshot to `<dir>/<label>.snap` at every pause.
/// Returns `Ok(None)` when `--stop-after` ended the run early (the
/// snapshot on disk carries the progress); `Ok(Some(report))` on
/// completion. The completed report is equivalence-key-identical to an
/// uninterrupted [`run_with_limits_layers`] run.
///
/// # Errors
///
/// I/O errors reading/writing snapshot files; `InvalidData` when the
/// resume snapshot is malformed, is for a different algorithm, or does
/// not match the scenario.
pub fn run_checkpointed(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
    layers: SolverLayers,
    ckpt: &Checkpointing,
    label: &str,
) -> std::io::Result<Option<RunReport>> {
    run_checkpointed_dedup(
        scenario,
        algorithm,
        limits,
        workers,
        layers,
        false,
        ParMode::Spec,
        ckpt,
        label,
    )
}

/// [`run_checkpointed`] with the `--dedup` axis. The dedup flag travels
/// inside the snapshot, so a *resumed* run keeps pruning regardless of
/// the `dedup` argument here (which only configures fresh runs); the
/// memo index itself restarts cold after every resume — same canonical
/// results, possibly more states executed (DESIGN.md §10).
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed_dedup(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
    layers: SolverLayers,
    dedup: bool,
    mode: ParMode,
    ckpt: &Checkpointing,
    label: &str,
) -> std::io::Result<Option<RunReport>> {
    let s = scenario
        .clone()
        .with_state_cap(limits.state_cap)
        .with_sample_every(limits.sample_every);
    let mut engine = match ckpt.resume_path(label) {
        Some(path) => {
            let snap = load_snapshot(&path)?;
            if snap.algorithm() != algorithm {
                return Err(io_invalid(format!(
                    "{}: snapshot is a {} run, expected {algorithm}",
                    path.display(),
                    snap.algorithm()
                )));
            }
            let engine = Engine::resume(s, &snap)
                .map_err(|e| io_invalid(format!("{}: {e}", path.display())))?;
            println!(
                "     | resumed from {} ({} events, {} states in)",
                path.display(),
                snap.events_processed(),
                snap.total_states()
            );
            engine
        }
        None => Engine::new(s, algorithm).with_dedup(dedup),
    };
    layers.apply(engine.solver());
    let budget = if ckpt.every > 0 {
        Budget::events(ckpt.every)
    } else {
        Budget::unlimited()
    };
    let mut written = 0u64;
    loop {
        let outcome = match workers {
            None => engine.run_until(budget),
            Some(w) => mode.run_until(&mut engine, w, budget),
        };
        if outcome.is_complete() {
            return Ok(Some(engine.into_report()));
        }
        let path = ckpt.snapshot_path(label);
        std::fs::create_dir_all(&ckpt.dir)?;
        std::fs::write(&path, engine.snapshot().to_bytes())?;
        written += 1;
        if ckpt.stop_after.is_some_and(|n| written >= n) {
            println!(
                "     | stopped after {written} snapshot(s): {}",
                path.display()
            );
            return Ok(None);
        }
    }
}

/// Like [`run_with_limits_layers`], with a [`sde_trace::RingSink`]
/// recorder attached: returns the report plus every captured trace event.
/// Eviction is never silent — a warning is printed if the ring filled up.
pub fn run_with_limits_traced(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
    layers: SolverLayers,
) -> (RunReport, Vec<sde_trace::TimedEvent>) {
    run_with_limits_traced_dedup(
        scenario,
        algorithm,
        limits,
        workers,
        layers,
        false,
        ParMode::Spec,
    )
}

/// [`run_with_limits_traced`] with the `--dedup` axis; pruned dispatches
/// appear in the trace as `StatePruned` events pointing at the memoized
/// survivor.
#[allow(clippy::too_many_arguments)]
pub fn run_with_limits_traced_dedup(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
    layers: SolverLayers,
    dedup: bool,
    mode: ParMode,
) -> (RunReport, Vec<sde_trace::TimedEvent>) {
    let s = scenario
        .clone()
        .with_state_cap(limits.state_cap)
        .with_sample_every(limits.sample_every);
    let sink = std::sync::Arc::new(sde_trace::RingSink::default());
    let engine = Engine::new(s, algorithm)
        .with_dedup(dedup)
        .with_trace_sink(sink.clone() as std::sync::Arc<dyn sde_trace::TraceSink>);
    layers.apply(engine.solver());
    let report = match workers {
        None => engine.run(),
        Some(w) => mode.run(engine, w),
    };
    if sink.dropped() > 0 {
        eprintln!(
            "warning: trace ring evicted {} events (capacity {}); the file is truncated",
            sink.dropped(),
            sde_trace::DEFAULT_RING_CAPACITY
        );
    }
    (report, sink.take())
}

/// Derives a per-run trace filename from the `--trace` base path:
/// `out.jsonl` + `cob` → `out_cob.jsonl`.
pub fn trace_file_for(base: &std::path::Path, label: &str) -> std::path::PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
    base.with_file_name(format!("{stem}_{label}.{ext}"))
}

/// Writes one recorded run to disk: deterministic JSONL at `path` plus a
/// Chrome `trace_event` twin at `<path stem>.chrome.json` (load it in
/// `chrome://tracing` or Perfetto).
///
/// # Errors
///
/// Propagates I/O errors from writing either file.
pub fn write_trace(
    path: &std::path::Path,
    events: &[sde_trace::TimedEvent],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    sde_trace::write_jsonl(path, events, true)?;
    sde_trace::write_chrome_trace(&path.with_extension("chrome.json"), events)
}

/// Formats the Table I header.
pub fn table_header() -> String {
    format!(
        "{:<4} | {:>12} | {:>10} | {:>12} |",
        "alg", "runtime", "states", "RAM (est.)"
    )
}

/// Writes a report's Fig. 10 series as CSV to `path`.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn write_series_csv(report: &RunReport, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, report.series.to_csv())
}

/// Serializes one run report as a JSON object — the machine-readable
/// record behind `BENCH_table1.json` / `BENCH_fig10.json`. Hand-rolled:
/// the workspace is dependency-free, and the schema is flat enough that a
/// serializer would buy nothing.
///
/// `history_digest` is emitted as a hex *string*: u64 digests routinely
/// exceed JSON's 2^53 exact-integer range.
pub fn report_json(label: &str, report: &RunReport) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let s = &report.solver;
    let mut out = format!(
        concat!(
            "  {{\n",
            "    \"label\": \"{}\",\n",
            "    \"algorithm\": \"{}\",\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"virtual_ms\": {},\n",
            "    \"total_states\": {},\n",
            "    \"live_states\": {},\n",
            "    \"final_bytes\": {},\n",
            "    \"peak_bytes\": {},\n",
            "    \"instructions\": {},\n",
            "    \"events\": {},\n",
            "    \"packets\": {},\n",
            "    \"aborted\": {},\n",
            "    \"groups\": {},\n",
            "    \"duplicate_states\": {},\n",
            "    \"duplicate_terminated\": {},\n",
            "    \"states_executed\": {},\n",
            "    \"history_digest\": \"{:#018x}\",\n",
            "    \"solver\": {{\n",
            "      \"queries\": {},\n",
            "      \"cache_hits\": {},\n",
            "      \"group_cache_hits\": {},\n",
            "      \"model_reuse_hits\": {},\n",
            "      \"ucore_hits\": {},\n",
            "      \"sat\": {},\n",
            "      \"unsat\": {},\n",
            "      \"unknown\": {},\n",
            "      \"nodes_visited\": {}\n",
            "    }}",
        ),
        escape(label),
        escape(report.algorithm),
        report.wall.as_secs_f64() * 1000.0,
        report.virtual_ms,
        report.total_states,
        report.live_states,
        report.final_bytes,
        report.peak_bytes,
        report.instructions,
        report.events,
        report.packets,
        report.aborted,
        report.groups,
        report.duplicate_states,
        report.duplicate_terminated,
        report.states_executed,
        report.history_digest,
        s.queries,
        s.cache_hits,
        s.group_cache_hits,
        s.model_reuse_hits,
        s.ucore_hits,
        s.sat,
        s.unsat,
        s.unknown,
        s.nodes_visited,
    );
    // The dedup block is emitted only when the detector did anything —
    // all-zero stats mean dedup was off (or preset-gated) and the block
    // would be noise.
    let d = &report.dedup;
    if *d != sde_core::DedupStats::default() {
        out.push_str(&format!(
            concat!(
                ",\n    \"dedup\": {{\n",
                "      \"candidates\": {},\n",
                "      \"confirmed\": {},\n",
                "      \"collisions\": {},\n",
                "      \"pruned_states\": {},\n",
                "      \"saved_instructions\": {}\n",
                "    }}",
            ),
            d.candidates, d.confirmed, d.collisions, d.pruned_states, d.saved_instructions,
        ));
    }
    if let Some(p) = &report.parallel {
        out.push_str(&format!(
            concat!(
                ",\n    \"parallel\": {{\n",
                "      \"workers\": {},\n",
                "      \"batches\": {},\n",
                "      \"speculated_batches\": {},\n",
                "      \"spec_groups\": {},\n",
                "      \"spec_events\": {},\n",
                "      \"spec_instructions\": {},\n",
                "      \"spec_aborts\": {},\n",
                "      \"shard_recorded\": {},\n",
                "      \"shard_applied\": {},\n",
                "      \"shard_fallback\": {},\n",
                "      \"shard_skips\": {},\n",
                "      \"shard_tainted\": {},\n",
                "      \"utilization\": {:.4}\n",
                "    }}",
            ),
            p.workers,
            p.batches,
            p.speculated_batches,
            p.spec_groups,
            p.spec_events,
            p.spec_instructions,
            p.spec_aborts,
            p.shard_recorded,
            p.shard_applied,
            p.shard_fallback,
            p.shard_skips,
            p.shard_tainted,
            p.utilization(),
        ));
    }
    out.push_str("\n  }");
    out
}

fn json_string_array(items: &[String]) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let rendered: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", rendered.join(", "))
}

/// Serializes one [`ConformanceReport`] as a JSON object for
/// `BENCH_oracle.json`. Every truncation flag the oracle tracks is a
/// first-class field — a truncated verdict must be machine-detectable,
/// not buried in a prose summary.
pub fn conformance_json(label: &str, report: &ConformanceReport) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        concat!(
            "  {{\n",
            "    \"label\": \"{}\",\n",
            "    \"algorithm\": \"{}\",\n",
            "    \"clean\": {},\n",
            "    \"exhaustive\": {},\n",
            "    \"truth_outcomes\": {},\n",
            "    \"truth_assignments\": {},\n",
            "    \"truth_infeasible\": {},\n",
            "    \"truth_replays\": {},\n",
            "    \"truth_truncated\": {},\n",
            "    \"domain_truncated\": {},\n",
            "    \"input_space\": {},\n",
            "    \"cases\": {},\n",
            "    \"dscenarios_seen\": {},\n",
            "    \"unsolvable\": {},\n",
            "    \"testgen_truncated\": {},\n",
            "    \"matched\": {},\n",
            "    \"missing_count\": {},\n",
            "    \"phantom_count\": {},\n",
            "    \"duplicates\": {},\n",
            "    \"missing\": {},\n",
            "    \"phantom\": {}\n",
            "  }}",
        ),
        escape(label),
        escape(report.algorithm),
        report.is_clean(),
        report.exhaustive(),
        report.truth_outcomes,
        report.truth_assignments,
        report.truth_infeasible,
        report.truth_replays,
        report.truth_truncated,
        json_string_array(&report.domain_truncated),
        report.input_space,
        report.cases,
        report.dscenarios_seen,
        report.unsolvable,
        report.testgen_truncated,
        report.matched,
        report.missing.len(),
        report.phantom.len(),
        report.duplicates,
        json_string_array(&report.missing),
        json_string_array(&report.phantom),
    )
}

/// Serializes one [`TestGenReport`] as a JSON object — the `--testgen`
/// companion record in `BENCH_table1.json`. `truncated` is the point:
/// a capped generation pass must say so in the machine-readable output.
pub fn testgen_json(label: &str, report: &TestGenReport) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        concat!(
            "  {{\n",
            "    \"label\": \"{}\",\n",
            "    \"cases\": {},\n",
            "    \"dscenarios_seen\": {},\n",
            "    \"unsolvable\": {},\n",
            "    \"truncated\": {}\n",
            "  }}",
        ),
        escape(label),
        report.cases.len(),
        report.dscenarios_seen,
        report.unsolvable,
        report.truncated,
    )
}

/// Writes pre-rendered [`report_json`] objects as a JSON array to `path`.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn write_bench_json(path: &std::path::Path, objects: &[String]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, format!("[\n{}\n]\n", objects.join(",\n")))
}

/// Parses `--key value`-style arguments (tiny, dependency-free).
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Args {
        let mut args = Args::default();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        args.pairs
                            .push((key.to_string(), iter.next().expect("peeked")));
                    }
                    _ => args.flags.push(key.to_string()),
                }
            }
        }
        args
    }

    /// The value of `--key`, parsed. `None` when the flag is absent.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the flag is present but its value
    /// does not parse — a typo'd `--side banana` must not silently fall
    /// back to a default and launch the wrong (possibly much heavier)
    /// experiment.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| {
                v.parse()
                    .unwrap_or_else(|_| panic!("invalid value {v:?} for --{key}"))
            })
    }

    /// Whether the bare flag `--key` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shape() {
        let s = paper_scenario(5);
        assert_eq!(s.node_count(), 25);
        assert_eq!(s.duration_ms, 10_000);
        assert!(!s.failures.is_empty());
    }

    #[test]
    fn limits_apply() {
        let s = paper_scenario(3);
        let r = run_with_limits(
            &s,
            Algorithm::Cob,
            RunLimits {
                state_cap: 50,
                sample_every: 8,
            },
        );
        assert!(r.aborted, "a 50-state cap must abort COB");
        assert!(r.total_states >= 50);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let s = paper_scenario(3);
        let r = run_with_limits(
            &s,
            Algorithm::Sds,
            RunLimits {
                state_cap: 10_000,
                sample_every: 64,
            },
        );
        let obj = report_json("sds_full", &r);
        for key in [
            "\"label\"",
            "\"wall_ms\"",
            "\"packets\"",
            "\"group_cache_hits\"",
            "\"model_reuse_hits\"",
            "\"ucore_hits\"",
        ] {
            assert!(obj.contains(key), "missing {key} in {obj}");
        }
        let dir = std::env::temp_dir().join("sde-bench-json-test");
        let path = dir.join("BENCH_test.json");
        write_bench_json(&path, &[obj.clone(), obj]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("[\n"));
        assert!(content.trim_end().ends_with(']'));
        // Braces must balance and never go negative — the cheap
        // well-formedness proxy short of carrying a JSON parser.
        let mut depth = 0i64;
        for c in content.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced brackets in {content}");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced brackets in {content}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn layer_toggles_are_answer_preserving_and_observable() {
        let s = symbolic_grid(2);
        let limits = RunLimits::default();
        let full = run_with_limits_layers(&s, Algorithm::Sds, limits, None, SolverLayers::Full);
        let exact =
            run_with_limits_layers(&s, Algorithm::Sds, limits, None, SolverLayers::ExactOnly);
        let off = run_with_limits_layers(&s, Algorithm::Sds, limits, None, SolverLayers::Off);
        // Cache layers may only change solver counters, never the run.
        assert_eq!(full.equivalence_key(), exact.equivalence_key());
        assert_eq!(full.equivalence_key(), off.equivalence_key());
        assert!(full.solver.group_cache_hits > 0, "{:?}", full.solver);
        assert_eq!(exact.solver.group_cache_hits, 0, "{:?}", exact.solver);
        assert_eq!(off.solver.cache_hits, 0, "{:?}", off.solver);
        assert_eq!(off.solver.group_cache_hits, 0, "{:?}", off.solver);
        assert_eq!(off.solver.model_reuse_hits, 0, "{:?}", off.solver);
        assert_eq!(off.solver.ucore_hits, 0, "{:?}", off.solver);
    }

    #[test]
    fn fault_axes_parse_and_apply() {
        assert_eq!(FaultAxis::parse_list("all"), FaultAxis::ALL.to_vec());
        assert_eq!(
            FaultAxis::parse_list("partition,crashrec"),
            vec![FaultAxis::Partition, FaultAxis::CrashRec]
        );
        assert_eq!(
            FaultAxis::join(&FaultAxis::ALL),
            "partition+latency+corrupt+crashrec"
        );
        let base = oracle_scenario("tiny");
        assert!(with_fault_axes(base.clone(), &[]).faults.is_empty());
        let all = with_fault_axes(base, &FaultAxis::ALL);
        assert!(all.faults.cut_contains(NodeId(0), NodeId(1)));
        assert_eq!(all.faults.heal_choices().len(), 2, "heal time is symbolic");
        assert_eq!(all.faults.latency_budget(NodeId(0)), 1);
        assert_eq!(all.faults.corrupt_budget(NodeId(0)), 1);
        assert_eq!(all.faults.crash_budget(NodeId(0)), 1);
        assert_eq!(all.faults.persist_base(), sde_os::layout::PERSIST_BASE);
    }

    #[test]
    #[should_panic(expected = "unknown fault axis")]
    fn fault_axis_typo_is_loud() {
        FaultAxis::parse_list("partition,latncy");
    }

    #[test]
    fn oracle_presets_resolve() {
        assert_eq!(oracle_scenario("tiny").node_count(), 2);
        assert_eq!(oracle_scenario("line3").node_count(), 3);
        assert_eq!(oracle_scenario("grid").node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown oracle preset")]
    fn oracle_preset_typo_is_loud() {
        oracle_scenario("tinny");
    }

    #[test]
    fn conformance_json_surfaces_truncation() {
        use sde_core::oracle::{conformance_against, ground_truth, OracleConfig};
        let scenario = oracle_scenario("tiny");
        let cfg = OracleConfig::default();
        let truth = ground_truth(&scenario, &cfg);
        let clean = conformance_against(&truth, &scenario, Algorithm::Sds, None, &cfg);
        let obj = conformance_json("tiny_sds", &clean);
        assert!(obj.contains("\"truth_truncated\": false"), "{obj}");
        assert!(obj.contains("\"testgen_truncated\": false"), "{obj}");
        assert!(obj.contains("\"clean\": true"), "{obj}");

        // A capped enumeration must be loud in both renderings.
        let tight = OracleConfig {
            max_assignments: 1,
            ..OracleConfig::default()
        };
        let capped_truth = ground_truth(&scenario, &tight);
        let capped = conformance_against(&capped_truth, &scenario, Algorithm::Sds, None, &tight);
        let obj = conformance_json("tiny_capped", &capped);
        assert!(obj.contains("\"truth_truncated\": true"), "{obj}");
        assert!(obj.contains("\"exhaustive\": false"), "{obj}");
        assert!(
            capped.summary().contains("TRUNCATED"),
            "{}",
            capped.summary()
        );
    }

    #[test]
    fn testgen_json_surfaces_truncation() {
        use sde_core::testgen;
        let scenario = oracle_scenario("line3");
        let mut engine = Engine::new(scenario, Algorithm::Sds);
        engine.run_in_place();
        let full = testgen::generate(&engine, 4096);
        assert!(!full.truncated);
        let obj = testgen_json("line3_sds", &full);
        assert!(obj.contains("\"truncated\": false"), "{obj}");

        let capped = testgen::generate(&engine, 1);
        assert!(capped.truncated, "a 1-case cap must truncate line3");
        let obj = testgen_json("line3_capped", &capped);
        assert!(obj.contains("\"truncated\": true"), "{obj}");
    }

    #[test]
    fn csv_roundtrip() {
        let s = paper_scenario(3);
        let r = run_with_limits(&s, Algorithm::Sds, RunLimits::default());
        let dir = std::env::temp_dir().join("sde-bench-test");
        let path = dir.join("series.csv");
        write_series_csv(&r, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("wall_ms,"));
        assert!(content.lines().count() > 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
