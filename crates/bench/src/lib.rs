//! Shared harness for regenerating the paper's tables and figures.
//!
//! Experiment index (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * **Table I** — `cargo run -p sde-bench --release --bin table1`
//! * **Figure 10 (a–f)** — `cargo run -p sde-bench --release --bin fig10`
//! * microbenchmarks & ablations — `cargo bench -p sde-bench`
//!
//! The harness reproduces the *shape* of the paper's results (who wins,
//! by what rough factor, where COB must be aborted), not the absolute
//! numbers of the authors' 2011 Xeon testbed; see DESIGN.md for the
//! substitutions.

use sde_core::{run, Algorithm, Engine, RunReport, Scenario};
use sde_net::{FailureConfig, Topology};
use sde_os::apps::collect::{self, CollectConfig};
use sde_os::apps::sense::{self, SenseConfig};

/// The paper's §IV-A scenario for a `side × side` grid: corner-to-corner
/// static route, one packet per second for ten seconds, symbolic drop of
/// one packet at every route node and route neighbor.
pub fn paper_scenario(side: u16) -> Scenario {
    let topology = Topology::grid(side, side);
    let cfg = CollectConfig::paper_grid(side, side);
    let failures =
        FailureConfig::new().drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
    let programs = collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(10_000)
}

/// The solver-bound companion scenario for a `side × side` grid: the
/// [`sense`] workload (symbolic sensor readings classified at every route
/// hop), no failure model. Execution forks on *data* and nearly all wall
/// time goes to constraint solving, which is the regime
/// [`Engine::run_parallel`](sde_core::Engine::run_parallel) accelerates —
/// the `workers` axis of the engine bench runs on this scenario.
pub fn symbolic_grid(side: u16) -> Scenario {
    let topology = Topology::grid(side, side);
    let cfg = SenseConfig::paper_grid(side, side);
    let duration = cfg.interval_ms * (u64::from(cfg.packet_count) + 2);
    let programs = sense::programs(&topology, &cfg);
    Scenario::new(topology, programs).with_duration_ms(duration)
}

/// Per-algorithm run parameters for one experiment.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Abort cap on total created states (the paper's 40 GB analogue).
    pub state_cap: usize,
    /// Sampling period in processed events.
    pub sample_every: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            state_cap: 120_000,
            sample_every: 256,
        }
    }
}

/// Runs `scenario` under `algorithm` with the given limits.
pub fn run_with_limits(scenario: &Scenario, algorithm: Algorithm, limits: RunLimits) -> RunReport {
    run_with_limits_workers(scenario, algorithm, limits, None)
}

/// Like [`run_with_limits`], but optionally through the parallel engine:
/// `Some(w)` runs [`Engine::run_parallel`] with `w` speculative workers
/// (the report is bit-identical, plus [`RunReport::parallel`]
/// (sde_core::RunReport::parallel) counters); `None` runs sequentially.
pub fn run_with_limits_workers(
    scenario: &Scenario,
    algorithm: Algorithm,
    limits: RunLimits,
    workers: Option<usize>,
) -> RunReport {
    let s = scenario
        .clone()
        .with_state_cap(limits.state_cap)
        .with_sample_every(limits.sample_every);
    match workers {
        None => run(&s, algorithm),
        Some(w) => Engine::new(s, algorithm).run_parallel(w),
    }
}

/// Formats the Table I header.
pub fn table_header() -> String {
    format!(
        "{:<4} | {:>12} | {:>10} | {:>12} |",
        "alg", "runtime", "states", "RAM (est.)"
    )
}

/// Writes a report's Fig. 10 series as CSV to `path`.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn write_series_csv(report: &RunReport, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, report.series.to_csv())
}

/// Parses `--key value`-style arguments (tiny, dependency-free).
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Args {
        let mut args = Args::default();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        args.pairs
                            .push((key.to_string(), iter.next().expect("peeked")));
                    }
                    _ => args.flags.push(key.to_string()),
                }
            }
        }
        args
    }

    /// The value of `--key`, parsed. `None` when the flag is absent.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the flag is present but its value
    /// does not parse — a typo'd `--side banana` must not silently fall
    /// back to a default and launch the wrong (possibly much heavier)
    /// experiment.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| {
                v.parse()
                    .unwrap_or_else(|_| panic!("invalid value {v:?} for --{key}"))
            })
    }

    /// Whether the bare flag `--key` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shape() {
        let s = paper_scenario(5);
        assert_eq!(s.node_count(), 25);
        assert_eq!(s.duration_ms, 10_000);
        assert!(!s.failures.is_empty());
    }

    #[test]
    fn limits_apply() {
        let s = paper_scenario(3);
        let r = run_with_limits(
            &s,
            Algorithm::Cob,
            RunLimits {
                state_cap: 50,
                sample_every: 8,
            },
        );
        assert!(r.aborted, "a 50-state cap must abort COB");
        assert!(r.total_states >= 50);
    }

    #[test]
    fn csv_roundtrip() {
        let s = paper_scenario(3);
        let r = run_with_limits(&s, Algorithm::Sds, RunLimits::default());
        let dir = std::env::temp_dir().join("sde-bench-test");
        let path = dir.join("series.csv");
        write_series_csv(&r, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("wall_ms,"));
        assert!(content.lines().count() > 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
