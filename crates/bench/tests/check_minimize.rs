//! The ISSUE's acceptance criteria for the invariant-checking layer and
//! the counterexample minimizer, pinned as tests (DESIGN.md §12):
//!
//! * the seeded `token` demo under `--faults all` violates
//!   `unique-token-owner` and the minimizer reduces the witness by ≥50%;
//! * minimizing an already-minimal repro is a no-op (idempotence);
//! * repro artifacts are byte-identical whether the violation was found
//!   by 1, 2 or 4 workers (determinism);
//! * the repaired protocol (`--fixed`) and the `persist` demo are
//!   violation-free negative controls.

use sde_bench::{demo_checker, demo_scenario, render_artifact, with_fault_axes, FaultAxis};
use sde_core::check::Violation;
use sde_core::oracle::Assignment;
use sde_core::{Algorithm, Engine, MinimizeReport, Minimizer, Scenario};
use sde_trace::{BufferSink, Lineage, TraceSink};
use std::sync::Arc;

fn token_scenario(fixed: bool) -> Scenario {
    with_fault_axes(demo_scenario("token", fixed), &FaultAxis::ALL)
}

/// Explores the token demo with `workers` and returns the first
/// violation, lineage filled — the repro bin's selection rule.
fn find_violation(scenario: &Scenario, workers: usize) -> Option<Violation> {
    let sink = Arc::new(BufferSink::new());
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    if workers > 1 {
        engine.run_parallel_in_place(workers);
    } else {
        engine.run_in_place();
    }
    let mut violation = demo_checker("token").check(&engine).into_iter().next()?;
    let lineage = Lineage::from_events(sink.drain().iter()).expect("trace must be well-formed");
    violation.fill_lineage(&lineage);
    Some(violation)
}

fn seed_of(violation: &Violation) -> Assignment {
    violation
        .preset
        .iter()
        .map(|(n, name, occ, v)| ((n, name.to_string(), occ), v))
        .collect()
}

fn minimize(scenario: &Scenario, violation: &Violation) -> MinimizeReport {
    Minimizer::new(
        scenario.clone(),
        Algorithm::Sds,
        demo_checker("token"),
        &violation.invariant,
    )
    .minimize(&seed_of(violation))
    .expect("the found witness must stabilize and reproduce")
}

#[test]
fn token_demo_violates_unique_owner_and_shrinks_by_half() {
    let scenario = token_scenario(false);
    let violation = find_violation(&scenario, 1).expect("seeded token bug must be found");
    assert_eq!(violation.invariant, "unique-token-owner");
    assert!(
        violation.active_axes.contains(&"crashrec"),
        "the bug is triggered by crash-recovery, got axes {:?}",
        violation.active_axes
    );
    assert!(
        !violation.lineage.is_empty(),
        "the violation must carry its root-to-state lineage slice"
    );

    let report = minimize(&scenario, &violation);
    assert!(
        report.reduction_percent() >= 50,
        "ISSUE acceptance: ≥50% witness reduction, got {}% ({} -> {})",
        report.reduction_percent(),
        report.initial_size(),
        report.final_size()
    );
    assert!(
        !report.truncated,
        "the search must converge, not hit the probe cap"
    );
    // The minimal repro keeps only the crash decision.
    assert_eq!(report.scenario.faults.active_axes(), vec!["crashrec"]);
    assert_eq!(report.final_entries, 1);
    assert!(
        report.final_duration_ms < report.initial_duration_ms,
        "phase 4 must truncate the horizon"
    );
}

#[test]
fn minimizing_a_minimal_repro_is_a_noop() {
    let scenario = token_scenario(false);
    let violation = find_violation(&scenario, 1).expect("seeded token bug must be found");
    let first = minimize(&scenario, &violation);

    // Re-shrink the already-minimal repro: same scenario, same witness.
    let again = Minimizer::new(
        first.scenario.clone(),
        Algorithm::Sds,
        demo_checker("token"),
        &first.violation.invariant,
    )
    .minimize(&first.assignment)
    .expect("a minimal repro must still reproduce");

    assert_eq!(again.assignment, first.assignment, "no entry may change");
    assert!(again.removed_axes.is_empty(), "no axis left to remove");
    assert_eq!(
        again.final_duration_ms, first.final_duration_ms,
        "no further horizon truncation"
    );
    assert_eq!(
        again.initial_size(),
        again.final_size(),
        "size must not move"
    );
    assert_eq!(
        again.violation.digest(),
        first.violation.digest(),
        "the canonical violation digest must be stable under re-minimization"
    );
}

#[test]
fn artifacts_are_byte_identical_across_worker_counts() {
    let scenario = token_scenario(false);
    let base_duration_ms = demo_scenario("token", false).duration_ms;
    let mut artifacts = Vec::new();
    for workers in [1usize, 2, 4] {
        let violation =
            find_violation(&scenario, workers).expect("every worker count must find the bug");
        let report = minimize(&scenario, &violation);
        artifacts.push(render_artifact(
            "token",
            false,
            "sds",
            base_duration_ms,
            &report,
            report.violation.digest(),
        ));
    }
    assert_eq!(artifacts[0], artifacts[1], "workers 1 vs 2");
    assert_eq!(artifacts[0], artifacts[2], "workers 1 vs 4");
    // The artifact really is the minimal one: a single witness entry.
    assert_eq!(
        artifacts[0].matches("\"name\"").count(),
        1,
        "exactly one witness entry expected in:\n{}",
        artifacts[0]
    );
}

#[test]
fn fixed_token_protocol_and_persist_demo_hold() {
    let fixed = token_scenario(true);
    assert!(
        find_violation(&fixed, 1).is_none(),
        "the repaired hand-off must clear the persistent flag"
    );

    let persist = with_fault_axes(demo_scenario("persist", false), &FaultAxis::ALL);
    let mut engine = Engine::new(persist, Algorithm::Sds);
    engine.run_in_place();
    let violations = demo_checker("persist").check(&engine);
    assert!(
        violations.is_empty(),
        "persist demo is the negative control, got {violations:?}"
    );
}
