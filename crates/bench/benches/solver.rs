//! Solver microbenchmarks: branch-feasibility queries dominate SDE time
//! (every symbolic branch of every state consults the solver).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sde_symbolic::{Expr, ExprRef, PathCondition, Solver, SymbolTable, Width};

/// A path condition shaped like the grid workload's: many independent
/// boolean drop decisions plus a few byte-range constraints.
fn workload_pc(bools: usize, bytes: usize) -> (PathCondition, SymbolTable) {
    let mut t = SymbolTable::new();
    let mut pc = PathCondition::new();
    for i in 0..bools {
        let d = Expr::sym(t.fresh("drop", Width::BOOL));
        pc = pc.with(if i % 2 == 0 { d } else { Expr::not(d) });
    }
    for _ in 0..bytes {
        let x = Expr::sym(t.fresh("hdr", Width::W8));
        pc = pc
            .with(Expr::ult(x.clone(), Expr::const_(200, Width::W8)))
            .with(Expr::ne(x, Expr::const_(0, Width::W8)));
    }
    (pc, t)
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/feasibility");
    for (bools, bytes) in [(4usize, 1usize), (16, 2), (64, 4)] {
        let (pc, mut table) = workload_pc(bools, bytes);
        let probe = Expr::sym(table.fresh("probe", Width::BOOL));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{bools}b{bytes}B")),
            &(pc, probe),
            |b, (pc, probe)| {
                b.iter(|| {
                    // Fresh solver each iteration: measure uncached cost.
                    let solver = Solver::new();
                    black_box(solver.may_be_true(pc, probe))
                })
            },
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/cache");
    let (pc, _t) = workload_pc(32, 4);
    group.bench_function("repeat_query_cached", |b| {
        let solver = Solver::new();
        let _ = solver.check(&pc); // warm
        b.iter(|| black_box(solver.check(&pc).is_sat()))
    });
    group.bench_function("repeat_query_uncached", |b| {
        let solver = Solver::new();
        solver.set_caching(false);
        b.iter(|| black_box(solver.check(&pc).is_sat()))
    });
    group.finish();
}

fn bench_linked_constraints(c: &mut Criterion) {
    // One dependent cluster the independence partitioner cannot split.
    let mut group = c.benchmark_group("solver/linked");
    for n in [2usize, 3, 4] {
        let mut t = SymbolTable::new();
        let vars: Vec<ExprRef> = (0..n)
            .map(|i| Expr::sym(t.fresh(&format!("v{i}"), Width::W8)))
            .collect();
        let mut pc = PathCondition::new();
        for w in vars.windows(2) {
            pc = pc.with(Expr::eq(
                Expr::add(w[0].clone(), Expr::const_(1, Width::W8)),
                w[1].clone(),
            ));
        }
        pc = pc.with(Expr::ult(vars[0].clone(), Expr::const_(16, Width::W8)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &pc, |b, pc| {
            b.iter(|| {
                let solver = Solver::new();
                black_box(solver.model(pc).is_some())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_feasibility,
    bench_cache,
    bench_linked_constraints
);
criterion_main!(benches);
