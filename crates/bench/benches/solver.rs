//! Solver microbenchmarks: branch-feasibility queries dominate SDE time
//! (every symbolic branch of every state consults the solver).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sde_symbolic::{Expr, ExprRef, PathCondition, Solver, SymbolTable, Width};

/// A path condition shaped like the grid workload's: many independent
/// boolean drop decisions plus a few byte-range constraints.
fn workload_pc(bools: usize, bytes: usize) -> (PathCondition, SymbolTable) {
    let mut t = SymbolTable::new();
    let mut pc = PathCondition::new();
    for i in 0..bools {
        let d = Expr::sym(t.fresh("drop", Width::BOOL));
        pc = pc.with(if i % 2 == 0 { d } else { Expr::not(d) });
    }
    for _ in 0..bytes {
        let x = Expr::sym(t.fresh("hdr", Width::W8));
        pc = pc
            .with(Expr::ult(x.clone(), Expr::const_(200, Width::W8)))
            .with(Expr::ne(x, Expr::const_(0, Width::W8)));
    }
    (pc, t)
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/feasibility");
    for (bools, bytes) in [(4usize, 1usize), (16, 2), (64, 4)] {
        let (pc, mut table) = workload_pc(bools, bytes);
        let probe = Expr::sym(table.fresh("probe", Width::BOOL));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{bools}b{bytes}B")),
            &(pc, probe),
            |b, (pc, probe)| {
                b.iter(|| {
                    // Fresh solver each iteration: measure uncached cost.
                    let solver = Solver::new();
                    black_box(solver.may_be_true(pc, probe))
                })
            },
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/cache");
    let (pc, _t) = workload_pc(32, 4);
    group.bench_function("repeat_query_cached", |b| {
        let solver = Solver::new();
        let _ = solver.check(&pc); // warm
        b.iter(|| black_box(solver.check(&pc).is_sat()))
    });
    group.bench_function("repeat_query_uncached", |b| {
        let solver = Solver::new();
        solver.set_caching(false);
        b.iter(|| black_box(solver.check(&pc).is_sat()))
    });
    group.finish();
}

fn bench_linked_constraints(c: &mut Criterion) {
    // One dependent cluster the independence partitioner cannot split.
    let mut group = c.benchmark_group("solver/linked");
    for n in [2usize, 3, 4] {
        let mut t = SymbolTable::new();
        let vars: Vec<ExprRef> = (0..n)
            .map(|i| Expr::sym(t.fresh(&format!("v{i}"), Width::W8)))
            .collect();
        let mut pc = PathCondition::new();
        for w in vars.windows(2) {
            pc = pc.with(Expr::eq(
                Expr::add(w[0].clone(), Expr::const_(1, Width::W8)),
                w[1].clone(),
            ));
        }
        pc = pc.with(Expr::ult(vars[0].clone(), Expr::const_(16, Width::W8)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &pc, |b, pc| {
            b.iter(|| {
                let solver = Solver::new();
                black_box(solver.model(pc).is_some())
            })
        });
    }
    group.finish();
}

fn bench_layer_stack(c: &mut Criterion) {
    // The acceptance bench for the incremental solver stack (DESIGN.md
    // §6): a stream of *related* queries — each one re-uses seven of
    // eight independent constraint groups and perturbs the eighth — so
    // whole-query exact matching never hits (every query key differs)
    // while per-group caching and counterexample reuse answer almost
    // everything incrementally.
    let mut group = c.benchmark_group("solver/layers");
    let mut t = SymbolTable::new();
    let vars: Vec<ExprRef> = (0..8)
        .map(|i| Expr::sym(t.fresh(&format!("x{i}"), Width::W8)))
        .collect();
    let mut base = PathCondition::new();
    for x in &vars {
        base = base
            .with(Expr::ult(x.clone(), Expr::const_(200, Width::W8)))
            .with(Expr::ne(x.clone(), Expr::const_(0, Width::W8)));
    }
    let queries: Vec<PathCondition> = (0..24u64)
        .map(|j| {
            let x = &vars[(j % 8) as usize];
            base.clone()
                .with(Expr::ugt(x.clone(), Expr::const_(1 + j % 64, Width::W8)))
        })
        .collect();
    type Setup = fn(&Solver);
    let configs: [(&str, Setup); 3] = [
        ("full_stack", |_| {}),
        ("exact_match_only", |s| {
            s.set_group_caching(false);
            s.set_cex_caching(false);
        }),
        ("uncached", |s| {
            s.set_caching(false);
            s.set_cex_caching(false);
        }),
    ];
    for (name, setup) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let solver = Solver::new();
                setup(&solver);
                let mut sat = 0u32;
                for q in &queries {
                    if solver.check(q).is_sat() {
                        sat += 1;
                    }
                }
                black_box(sat)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_feasibility,
    bench_cache,
    bench_linked_constraints,
    bench_layer_stack
);
criterion_main!(benches);
