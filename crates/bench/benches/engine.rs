//! End-to-end engine benchmarks: the paper's scenario at small scale,
//! per algorithm — the microscale version of Table I.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sde_bench::{paper_scenario, symbolic_grid};
use sde_core::{run, Algorithm, Engine, Scenario};
use sde_net::Topology;
use sde_os::apps::hello::{self, HelloConfig};

fn bench_paper_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/grid_collect");
    group.sample_size(10);
    for side in [3u16, 4] {
        let scenario = paper_scenario(side).with_sample_every(10_000);
        for alg in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), side * side),
                &(scenario.clone(), alg),
                |b, (scenario, alg)| {
                    b.iter(|| {
                        let r = run(scenario, *alg);
                        black_box(r.total_states)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_failure_free(c: &mut Criterion) {
    // No symbolic input at all: pure simulation cost (the mapping
    // algorithms should all be cheap and equal here).
    let mut group = c.benchmark_group("engine/hello_ring");
    let topology = Topology::ring(16);
    let programs = hello::programs(&topology, &HelloConfig::default());
    let scenario = Scenario::new(topology, programs).with_sample_every(10_000);
    for alg in Algorithm::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(alg.name()),
            &(scenario.clone(), alg),
            |b, (scenario, alg)| b.iter(|| black_box(run(scenario, *alg).packets)),
        );
    }
    group.finish();
}

fn bench_parallel_workers(c: &mut Criterion) {
    // The tentpole's workers axis, on the solver-bound sense workload
    // (symbolic readings classified per hop) where speculative
    // cache-warming has queries to warm. `seq` is the sequential
    // baseline; `w<N>` runs `Engine::run_parallel(N)`. Wall-clock gains
    // need spare cores — on a single-core host this axis measures the
    // speculation overhead bound instead.
    let mut group = c.benchmark_group("engine/parallel_workers");
    group.sample_size(10);
    let scenario = symbolic_grid(3).with_sample_every(10_000);
    for alg in [Algorithm::Cow, Algorithm::Sds] {
        group.bench_with_input(
            BenchmarkId::new(alg.name(), "seq"),
            &(scenario.clone(), alg),
            |b, (scenario, alg)| b.iter(|| black_box(run(scenario, *alg).total_states)),
        );
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), format!("w{workers}")),
                &(scenario.clone(), alg, workers),
                |b, (scenario, alg, workers)| {
                    b.iter(|| {
                        let r = Engine::new(scenario.clone(), *alg).run_parallel(*workers);
                        black_box(r.total_states)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_paper_grid,
    bench_failure_free,
    bench_parallel_workers
);
criterion_main!(benches);
