//! End-to-end engine benchmarks: the paper's scenario at small scale,
//! per algorithm — the microscale version of Table I.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sde_bench::paper_scenario;
use sde_core::{run, Algorithm, Scenario};
use sde_net::Topology;
use sde_os::apps::hello::{self, HelloConfig};

fn bench_paper_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/grid_collect");
    group.sample_size(10);
    for side in [3u16, 4] {
        let scenario = paper_scenario(side).with_sample_every(10_000);
        for alg in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), side * side),
                &(scenario.clone(), alg),
                |b, (scenario, alg)| {
                    b.iter(|| {
                        let r = run(scenario, *alg);
                        black_box(r.total_states)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_failure_free(c: &mut Criterion) {
    // No symbolic input at all: pure simulation cost (the mapping
    // algorithms should all be cheap and equal here).
    let mut group = c.benchmark_group("engine/hello_ring");
    let topology = Topology::ring(16);
    let programs = hello::programs(&topology, &HelloConfig::default());
    let scenario = Scenario::new(topology, programs).with_sample_every(10_000);
    for alg in Algorithm::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(alg.name()),
            &(scenario.clone(), alg),
            |b, (scenario, alg)| {
                b.iter(|| black_box(run(scenario, *alg).packets))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_grid, bench_failure_free);
criterion_main!(benches);
