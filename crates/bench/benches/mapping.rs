//! State-mapping microbenchmarks: the per-transmission cost of each
//! algorithm as network size and rival pressure grow — the quantity
//! §III-E's analysis bounds and Table I aggregates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sde_core::mapping::{Algorithm, MemoryStore};

/// One conflicted transmission: the sender has a rival, so COW forks the
/// whole dstate (k − 1 states) while SDS forks one target.
fn bench_conflicted_send(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/conflicted_send");
    for k in [10u16, 50, 100] {
        for alg in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), k),
                &(alg, k),
                |b, &(alg, k)| {
                    b.iter(|| {
                        let mut mapper = alg.new_mapper();
                        let mut store = MemoryStore::booted(mapper.as_mut(), k);
                        // One local branch creates the rival (for COB this
                        // is where the k−1 forks happen).
                        store.branch(mapper.as_mut(), store.state(0));
                        // The conflicted transmission.
                        let d = mapper.map_send(
                            store.state(0),
                            store.node(0),
                            store.node(1),
                            &mut store,
                        );
                        black_box((d.receivers.len(), store.forks().len()))
                    })
                },
            );
        }
    }
    group.finish();
}

/// A burst of conflict-free sends after the dust settles: the steady
/// state of a quiet network.
fn bench_quiet_sends(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/quiet_sends");
    for alg in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| {
                let mut mapper = alg.new_mapper();
                let mut store = MemoryStore::booted(mapper.as_mut(), 50);
                for i in 0..49u16 {
                    let d = mapper.map_send(
                        store.state(u64::from(i)),
                        store.node(i),
                        store.node(i + 1),
                        &mut store,
                    );
                    black_box(d.receivers.len());
                }
                black_box(store.forks().len())
            })
        });
    }
    group.finish();
}

/// The grid pattern in miniature: repeated branch-then-send rounds.
/// COB's cost explodes with rounds; SDS stays near-linear.
fn bench_branch_send_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/branch_send_rounds");
    group.sample_size(20);
    for alg in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| {
                let mut mapper = alg.new_mapper();
                let mut store = MemoryStore::booted(mapper.as_mut(), 20);
                for round in 0..6u64 {
                    let sender = store.state(round % 3);
                    store.branch(mapper.as_mut(), sender);
                    let d = mapper.map_send(
                        sender,
                        store.node((round % 3) as u16),
                        store.node(10),
                        &mut store,
                    );
                    black_box(d.receivers.len());
                }
                black_box((store.len(), mapper.group_count()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_conflicted_send,
    bench_quiet_sends,
    bench_branch_send_rounds
);
criterion_main!(benches);
