//! Symbolic VM microbenchmarks: step throughput, fork cost, state clone
//! cost (the quantities the engine multiplies by millions of states).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sde_symbolic::{BinOp, Solver, SymbolTable, Width};
use sde_vm::{run_to_completion, ProgramBuilder, VmCtx, VmState};

/// A concrete counting loop: pure interpreter throughput.
fn loop_program(iterations: u64) -> sde_vm::Program {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, move |f| {
        let i = f.reg();
        f.const_(i, 0, Width::W64);
        let limit = f.imm(iterations, Width::W64);
        let one = f.imm(1, Width::W64);
        let (top, out) = (f.label(), f.label());
        f.place(top);
        let done = f.reg();
        f.bin(BinOp::Ule, done, limit, i);
        let body = f.label();
        f.br(done, out, body);
        f.place(body);
        f.bin(BinOp::Add, i, i, one);
        f.jmp(top);
        f.place(out);
        f.ret(None);
    });
    pb.build().unwrap()
}

/// A program forking into 2^depth leaves.
fn fork_program(depth: u16) -> sde_vm::Program {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, move |f| {
        for i in 0..depth {
            let b = f.reg();
            f.make_symbolic(b, &format!("b{i}"), Width::BOOL);
            let (yes, no) = (f.label(), f.label());
            f.br(b, yes, no);
            f.place(yes);
            f.nop();
            f.jmp(no);
            f.place(no);
        }
        f.ret(None);
    });
    pb.build().unwrap()
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm");
    let program = loop_program(1000);
    group.bench_function("concrete_loop_1k_iters", |b| {
        b.iter(|| {
            let solver = Solver::new();
            let mut symbols = SymbolTable::new();
            let mut ctx = VmCtx::new(&solver, &mut symbols);
            let state = VmState::fresh(&program);
            let out = run_to_completion(
                &program,
                state.prepared(&program, "main", &[]).unwrap(),
                &mut ctx,
            );
            black_box(out.finished.len())
        })
    });

    let forky = fork_program(6);
    group.bench_function("fork_64_leaves", |b| {
        b.iter(|| {
            let solver = Solver::new();
            let mut symbols = SymbolTable::new();
            let mut ctx = VmCtx::new(&solver, &mut symbols);
            let state = VmState::fresh(&forky);
            let out = run_to_completion(
                &forky,
                state.prepared(&forky, "main", &[]).unwrap(),
                &mut ctx,
            );
            assert_eq!(out.finished.len(), 64);
            black_box(out.finished.len())
        })
    });

    // Clone cost of a state with populated memory — the fork primitive.
    let heavy = heavy_state();
    group.bench_function("clone_state_1KiB_memory", |b| {
        b.iter(|| black_box(heavy.clone()).memory_footprint())
    });
    group.finish();
}

/// A terminated state with 1 KiB of written memory — the digest
/// benchmarks' worst case scales with exactly this kind of footprint.
fn heavy_state() -> VmState {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        for i in 0..512u64 {
            let a = f.imm(i * 2, Width::W32);
            let v = f.imm(i, Width::W16);
            f.store(a, v);
        }
        f.ret(None);
    });
    let writer = pb.build().unwrap();
    let solver = Solver::new();
    let mut symbols = SymbolTable::new();
    let mut ctx = VmCtx::new(&solver, &mut symbols);
    let state = VmState::fresh(&writer);
    let out = run_to_completion(
        &writer,
        state.prepared(&writer, "main", &[]).unwrap(),
        &mut ctx,
    );
    out.finished.into_iter().next().unwrap().0
}

/// The duplicate-detection hot path (DESIGN.md §10): the engine reads
/// `config_digest` at *every* dispatch, so it must stay O(frames) — the
/// incremental accumulators — while `config_digest_reference` rescans the
/// whole heap and path condition. The gap between the two is the
/// acceptance criterion "no full-state rehash on the hot path".
fn bench_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest");
    let heavy = heavy_state();
    assert_eq!(
        heavy.config_digest(),
        heavy.config_digest_reference(),
        "accumulators must agree with the rescan"
    );
    group.bench_function("incremental", |b| {
        b.iter(|| black_box(&heavy).config_digest())
    });
    group.bench_function("reference_rescan", |b| {
        b.iter(|| black_box(&heavy).config_digest_reference())
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_digest);
criterion_main!(benches);
