//! Microbenchmarks for the persistent data structures — the substrate
//! that makes cheap state forking (and therefore COB's baseline role)
//! possible at all.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sde_pds::{PList, PMap, PVec};
use std::collections::HashMap;

fn bench_pmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmap");
    for size in [100usize, 1000, 10_000] {
        let full: PMap<u32, u64> = (0..size as u32).map(|i| (i, u64::from(i))).collect();
        let std_full: HashMap<u32, u64> = (0..size as u32).map(|i| (i, u64::from(i))).collect();

        group.bench_with_input(BenchmarkId::new("insert", size), &size, |b, &n| {
            b.iter(|| {
                let mut m: PMap<u32, u64> = PMap::new();
                for i in 0..n as u32 {
                    m = m.insert(i, u64::from(i));
                }
                black_box(m.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("get", size), &full, |b, m| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..m.len() as u32 {
                    acc = acc.wrapping_add(*m.get(&i).unwrap());
                }
                black_box(acc)
            })
        });
        // The reason PMap exists: O(1) clone vs HashMap's O(n).
        group.bench_with_input(BenchmarkId::new("clone_persistent", size), &full, |b, m| {
            b.iter(|| black_box(m.clone()).len())
        });
        group.bench_with_input(BenchmarkId::new("clone_std", size), &std_full, |b, m| {
            b.iter(|| black_box(m.clone()).len())
        });
    }
    group.finish();
}

fn bench_pvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("pvec");
    let v: PVec<u64> = (0..10_000u64).collect();
    group.bench_function("push_10k", |b| {
        b.iter(|| {
            let mut v: PVec<u64> = PVec::new();
            for i in 0..10_000u64 {
                v = v.push(i);
            }
            black_box(v.len())
        })
    });
    group.bench_function("random_get", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut i = 7usize;
            for _ in 0..1000 {
                acc = acc.wrapping_add(*v.get(i % v.len()).unwrap());
                i = i.wrapping_mul(31).wrapping_add(17);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_plist(c: &mut Criterion) {
    let mut group = c.benchmark_group("plist");
    group.bench_function("prepend_1k_and_share", |b| {
        b.iter(|| {
            let mut base: PList<u64> = PList::new();
            for i in 0..1000 {
                base = base.prepend(i);
            }
            // Forking: 100 siblings each extend the shared base by one.
            let siblings: Vec<PList<u64>> = (0..100).map(|i| base.prepend(i)).collect();
            black_box(siblings.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pmap, bench_pvec, bench_plist);
criterion_main!(benches);
