//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **virtual-state sharing** — SDS with sharing removed *is* COW (the
//!   indirection layer is the entire difference), so the COW row of each
//!   comparison doubles as the "SDS minus virtual states" ablation;
//! * **solver query cache** on/off;
//! * **communication-history tracking** (digest-only vs full log) on/off;
//! * **statistics sampling period**.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sde_bench::{paper_scenario, symbolic_grid};
use sde_core::{run, Algorithm, Engine};
use sde_symbolic::{Expr, PathCondition, Solver, SymbolTable, Width};

fn bench_virtual_state_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/virtual_states");
    group.sample_size(10);
    let scenario = paper_scenario(4).with_sample_every(10_000);
    // with sharing = SDS; without sharing = COW.
    group.bench_function("with(SDS)", |b| {
        b.iter(|| black_box(run(&scenario, Algorithm::Sds).total_states))
    });
    group.bench_function("without(COW)", |b| {
        b.iter(|| black_box(run(&scenario, Algorithm::Cow).total_states))
    });
    group.finish();
}

fn bench_solver_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/solver_cache");
    // The engine re-asks near-identical feasibility queries as sibling
    // states branch; replicate that access pattern directly.
    let mut t = SymbolTable::new();
    let mut pc = PathCondition::new();
    for i in 0..24 {
        let d = Expr::sym(t.fresh("drop", Width::BOOL));
        pc = pc.with(if i % 2 == 0 { d } else { Expr::not(d) });
    }
    let probes: Vec<_> = (0..8)
        .map(|_| Expr::sym(t.fresh("probe", Width::BOOL)))
        .collect();
    // One config per layer of the incremental stack (DESIGN.md §6):
    // everything on, counterexample cache off, whole-query exact matching
    // only, and fully uncached.
    type Setup = fn(&Solver);
    let configs: [(&str, Setup); 4] = [
        ("full", |_| {}),
        ("no_cex", |s| s.set_cex_caching(false)),
        ("exact_only", |s| {
            s.set_group_caching(false);
            s.set_cex_caching(false);
        }),
        ("off", |s| {
            s.set_caching(false);
            s.set_cex_caching(false);
        }),
    ];
    for (name, setup) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &setup, |b, setup| {
            b.iter(|| {
                let solver = Solver::new();
                setup(&solver);
                let mut sat = 0u32;
                for _ in 0..16 {
                    for p in &probes {
                        if solver.may_be_true(&pc, p) {
                            sat += 1;
                        }
                    }
                }
                black_box(sat)
            })
        });
    }
    group.finish();
}

fn bench_history_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/history_tracking");
    group.sample_size(10);
    for (name, track) in [("digest_only", false), ("full_log", true)] {
        let scenario = paper_scenario(4)
            .with_history_tracking(track)
            .with_sample_every(10_000);
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            b.iter(|| black_box(run(s, Algorithm::Sds).final_bytes))
        });
    }
    group.finish();
}

fn bench_sampling_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/sampling_period");
    group.sample_size(10);
    for every in [16u64, 256, 4096] {
        let scenario = paper_scenario(4).with_sample_every(every);
        group.bench_with_input(BenchmarkId::from_parameter(every), &scenario, |b, s| {
            b.iter(|| black_box(run(s, Algorithm::Sds).total_states))
        });
    }
    group.finish();
}

fn bench_speculation(c: &mut Criterion) {
    // Speculative cache-warming on/off: `off` is the sequential engine,
    // `w<N>` the parallel engine with N workers, on the solver-bound
    // sense workload. The delta isolates what speculation costs (single
    // core) or saves (spare cores).
    let mut group = c.benchmark_group("ablation/speculation");
    group.sample_size(10);
    let scenario = symbolic_grid(3).with_sample_every(10_000);
    group.bench_function("off", |b| {
        b.iter(|| black_box(run(&scenario, Algorithm::Sds).total_states))
    });
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("on", format!("w{workers}")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let r = Engine::new(scenario.clone(), Algorithm::Sds).run_parallel(workers);
                    black_box(r.total_states)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_virtual_state_sharing,
    bench_solver_cache,
    bench_history_tracking,
    bench_sampling_period,
    bench_speculation
);
criterion_main!(benches);
