//! Instruction-level tests for the corners the inline unit tests don't
//! reach: casts, select, deep call chains, failure instructions,
//! symbolic pointers and preset-driven replay.

use sde_symbolic::{BinOp, CastOp, Expr, Solver, SymbolTable, Width};
use sde_vm::{run_to_completion, BugKind, Preset, Program, ProgramBuilder, Status, VmCtx, VmState};

fn run(program: &Program, handler: &str) -> sde_vm::HandlerOutcome {
    let solver = Solver::new();
    let mut symbols = SymbolTable::new();
    let mut ctx = VmCtx::new(&solver, &mut symbols);
    let state = VmState::fresh(program);
    run_to_completion(
        program,
        state.prepared(program, handler, &[]).unwrap(),
        &mut ctx,
    )
}

fn assert_clean(out: &sde_vm::HandlerOutcome) {
    assert!(
        out.bugged.is_empty(),
        "unexpected bug: {:?}",
        out.bugged[0].status()
    );
}

#[test]
fn casts_roundtrip() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let v = f.imm(0x80, Width::W8);
        let sx = f.reg();
        f.cast(CastOp::Sext, Width::W16, sx, v);
        let expect = f.imm(0xff80, Width::W16);
        let ok = f.reg();
        f.bin(BinOp::Eq, ok, sx, expect);
        f.assert(ok, "sext");
        let zx = f.reg();
        f.cast(CastOp::Zext, Width::W16, zx, v);
        let expect2 = f.imm(0x80, Width::W16);
        let ok2 = f.reg();
        f.bin(BinOp::Eq, ok2, zx, expect2);
        f.assert(ok2, "zext");
        let tr = f.reg();
        f.cast(CastOp::Trunc, Width::W8, tr, sx);
        let ok3 = f.reg();
        f.bin(BinOp::Eq, ok3, tr, v);
        f.assert(ok3, "trunc undoes sext low byte");
        f.ret(None);
    });
    assert_clean(&run(&pb.build().unwrap(), "main"));
}

#[test]
fn select_builds_ite_without_forking() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let x = f.reg();
        f.make_symbolic(x, "x", Width::W8);
        let ten = f.imm(10, Width::W8);
        let c = f.reg();
        f.bin(BinOp::Ult, c, x, ten);
        let a = f.imm(1, Width::W8);
        let b = f.imm(2, Width::W8);
        let r = f.reg();
        f.select(r, c, a, b);
        // r is 1 or 2 — assert r != 0 always holds, with no fork.
        let zero = f.imm(0, Width::W8);
        let nz = f.reg();
        f.bin(BinOp::Ne, nz, r, zero);
        f.assert(nz, "select result nonzero");
        f.ret(None);
    });
    let out = run(&pb.build().unwrap(), "main");
    assert_clean(&out);
    assert_eq!(out.finished.len(), 1, "select must not fork");
}

#[test]
fn mov_and_un_ops() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let a = f.imm(0b1010, Width::W8);
        let b = f.reg();
        f.mov(b, a);
        let n = f.reg();
        f.un(sde_symbolic::UnOp::Not, n, b);
        let expect = f.imm(0b1111_0101, Width::W8);
        let ok = f.reg();
        f.bin(BinOp::Eq, ok, n, expect);
        f.assert(ok, "not");
        let neg = f.reg();
        f.un(sde_symbolic::UnOp::Neg, neg, a);
        let expect2 = f.imm(0xf6, Width::W8); // -10 mod 256
        let ok2 = f.reg();
        f.bin(BinOp::Eq, ok2, neg, expect2);
        f.assert(ok2, "neg");
        f.ret(None);
    });
    assert_clean(&run(&pb.build().unwrap(), "main"));
}

#[test]
fn deep_call_chain_works_and_overflow_is_caught() {
    // A 3-deep chain computes ((1+1)+1)+1 = 4.
    let mut pb = ProgramBuilder::new();
    for (name, callee) in [("f0", "f1"), ("f1", "f2"), ("f2", "f3")] {
        pb.function(name, 1, move |f| {
            let r = f.reg();
            f.call(callee, &[f.param(0)], Some(r));
            let one = f.imm(1, Width::W8);
            let out = f.reg();
            f.bin(BinOp::Add, out, r, one);
            f.ret(Some(out));
        });
    }
    pb.function("f3", 1, |f| {
        f.ret(Some(f.param(0)));
    });
    pb.function("main", 0, |f| {
        let x = f.imm(1, Width::W8);
        let r = f.reg();
        f.call("f0", &[x], Some(r));
        let expect = f.imm(4, Width::W8);
        let ok = f.reg();
        f.bin(BinOp::Eq, ok, r, expect);
        f.assert(ok, "chain result");
        f.ret(None);
    });
    assert_clean(&run(&pb.build().unwrap(), "main"));

    // Unbounded recursion trips the depth guard as an internal bug.
    let mut pb = ProgramBuilder::new();
    pb.function("rec", 0, |f| {
        f.call("rec", &[], None);
        f.ret(None);
    });
    pb.function("main", 0, |f| {
        f.call("rec", &[], None);
        f.ret(None);
    });
    let out = run(&pb.build().unwrap(), "main");
    assert_eq!(out.bugged.len(), 1);
    match out.bugged[0].status() {
        Status::Bugged(r) => assert_eq!(r.kind, BugKind::Internal),
        other => panic!("{other:?}"),
    }
}

#[test]
fn fail_instruction_reports_with_message() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        f.fail("unreachable protocol state");
    });
    let out = run(&pb.build().unwrap(), "main");
    match out.bugged[0].status() {
        Status::Bugged(r) => {
            assert_eq!(r.kind, BugKind::ExplicitFail);
            assert_eq!(&*r.message, "unreachable protocol state");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn truly_symbolic_pointer_is_rejected() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let x = f.reg();
        f.make_symbolic(x, "addr", Width::W32);
        let v = f.imm(1, Width::W8);
        f.store(x, v);
        f.ret(None);
    });
    let out = run(&pb.build().unwrap(), "main");
    assert_eq!(out.bugged.len(), 1);
    match out.bugged[0].status() {
        Status::Bugged(r) => assert_eq!(r.kind, BugKind::SymbolicPointer),
        other => panic!("{other:?}"),
    }
}

#[test]
fn constrained_symbolic_pointer_concretizes() {
    // addr is symbolic but the path condition pins it to one value.
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let x = f.reg();
        f.make_symbolic(x, "addr", Width::W32);
        let target = f.imm(64, Width::W32);
        let eq = f.reg();
        f.bin(BinOp::Eq, eq, x, target);
        f.assume(eq);
        let v = f.imm(7, Width::W8);
        f.store(x, v);
        let back = f.reg();
        let t2 = f.imm(64, Width::W32);
        f.load(back, t2, Width::W8);
        let expect = f.imm(7, Width::W8);
        let ok = f.reg();
        f.bin(BinOp::Eq, ok, back, expect);
        f.assert(ok, "store through concretized pointer");
        f.ret(None);
    });
    let out = run(&pb.build().unwrap(), "main");
    assert_clean(&out);
    assert_eq!(out.finished.len(), 1);
}

#[test]
fn assume_false_discards_the_state() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let zero = f.imm(0, Width::BOOL);
        f.assume(zero);
        f.fail("never reached");
    });
    let out = run(&pb.build().unwrap(), "main");
    assert!(out.bugged.is_empty());
    assert!(out.finished.is_empty());
    assert_eq!(out.infeasible, 1);
}

#[test]
fn unknown_handler_and_bad_arity_are_rejected() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 1, |f| f.ret(None));
    let p = pb.build().unwrap();
    let s = VmState::fresh(&p);
    assert!(s.prepared(&p, "missing", &[]).is_none());
    assert!(s.prepared(&p, "main", &[]).is_none(), "arity mismatch");
    let arg = [Expr::const_(1, Width::W8)];
    assert!(s.prepared(&p, "main", &arg).is_some());
}

#[test]
fn preset_pins_symbolic_inputs() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let x = f.reg();
        f.make_symbolic(x, "x", Width::W8);
        let y = f.reg();
        f.make_symbolic(y, "x", Width::W8); // same name, occurrence 1
        let fifty = f.imm(50, Width::W8);
        let c = f.reg();
        f.bin(BinOp::Ult, c, x, fifty);
        let (lo, hi) = (f.label(), f.label());
        f.br(c, lo, hi);
        f.place(lo);
        f.halt();
        f.place(hi);
        let c2 = f.reg();
        f.bin(BinOp::Ult, c2, y, fifty);
        let (lo2, hi2) = (f.label(), f.label());
        f.br(c2, lo2, hi2);
        f.place(lo2);
        f.ret(None);
        f.place(hi2);
        f.fail("y too big");
    });
    let p = pb.build().unwrap();
    // Pin x#0 = 200 (go high), x#1 = 10 (avoid the failure).
    let mut preset = Preset::new();
    preset.insert(0, "x", 0, 200);
    preset.insert(0, "x", 1, 10);
    let solver = Solver::new();
    let mut symbols = SymbolTable::new();
    let mut ctx = VmCtx::new(&solver, &mut symbols);
    ctx.preset = Some(&preset);
    let state = VmState::fresh(&p);
    let out = run_to_completion(&p, state.prepared(&p, "main", &[]).unwrap(), &mut ctx);
    assert!(out.bugged.is_empty());
    assert_eq!(out.finished.len(), 1, "no forking under a full preset");
    assert_eq!(*out.finished[0].0.status(), Status::Idle);
}

#[test]
fn branch_trace_identifies_paths() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| {
        let x = f.reg();
        f.make_symbolic(x, "x", Width::BOOL);
        let (a, b) = (f.label(), f.label());
        f.br(x, a, b);
        f.place(a);
        f.ret(None);
        f.place(b);
        f.ret(None);
    });
    let p = pb.build().unwrap();
    let out = run(&p, "main");
    let traces: Vec<Vec<bool>> = out
        .finished
        .iter()
        .map(|(s, _)| s.branch_trace().map(|(_, taken)| *taken).collect())
        .collect();
    assert_eq!(traces.len(), 2);
    assert_ne!(traces[0], traces[1]);
    // External branches extend the digest too.
    let mut s = out.finished[0].0.clone();
    let before = s.path_digest();
    s.record_external_branch(1, 0, true);
    assert_ne!(s.path_digest(), before);
}

#[test]
fn halted_state_cannot_run_again() {
    let mut pb = ProgramBuilder::new();
    pb.function("main", 0, |f| f.halt());
    let p = pb.build().unwrap();
    let out = run(&p, "main");
    let halted = &out.finished[0].0;
    assert_eq!(*halted.status(), Status::Halted);
    assert!(!halted.status().is_live());
    assert!(halted.prepared(&p, "main", &[]).is_none());
}
