//! Replay presets: concrete values for symbolic inputs, keyed
//! run-independently.
//!
//! A solver [`Model`] identifies inputs by [`SymId`](sde_symbolic::SymId)
//! — the *global* creation index, which differs between a forking
//! symbolic run and its non-forking concrete replay. A [`Preset`] re-keys
//! the model by each input's
//! [`replay key`](sde_symbolic::SymVar::replay_key)
//! `(node, name, per-lineage occurrence)`, which is stable across runs of
//! the same scenario.
//!
//! Two optional behaviors support the conformance oracle
//! (`sde-core::oracle`):
//!
//! * **Strict mode** ([`Preset::with_strict`]): an input the preset does
//!   not pin is an *error* (the interpreter reports a
//!   [`BugKind::UnkeyedInput`](crate::BugKind::UnkeyedInput) bug) instead
//!   of silently replaying as 0 — an unpinned input under a supposedly
//!   complete assignment means the solve or the enumeration was
//!   incomplete, and defaulting would mask that.
//! * **Request recording** ([`Preset::recording`]): every input the
//!   replay asks for is appended to a shared [`RequestLog`], pinned or
//!   not. The oracle drives its exhaustive enumeration off this log: a
//!   replay under a partial assignment reveals (in deterministic order)
//!   which inputs the execution actually requests, and the first
//!   unpinned one is the next axis to branch on.

use sde_symbolic::{Model, SymbolTable, Width};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One input lookup performed by a replay, as seen by a [`RequestLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputRequest {
    /// The requesting node.
    pub node: u16,
    /// The input's name (`"drop"`, `"reading"`, ...).
    pub name: String,
    /// Per-lineage occurrence index of this name on this node.
    pub occurrence: u32,
    /// The input's bit width (the enumerable domain is `2^width`).
    pub width: Width,
    /// The pinned value, or `None` when the preset had no entry.
    pub pinned: Option<u64>,
}

impl InputRequest {
    /// The run-independent replay key of the requested input.
    pub fn replay_key(&self) -> (u16, String, u32) {
        (self.node, self.name.clone(), self.occurrence)
    }
}

/// Every input lookup of one replay, in global request order (the engine
/// is deterministic and sequential, so the order is a pure function of
/// the pinned prefix).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestLog {
    /// All lookups, pinned or not, in request order.
    pub requests: Vec<InputRequest>,
}

impl RequestLog {
    /// The requests the preset could not answer, in request order.
    pub fn misses(&self) -> impl Iterator<Item = &InputRequest> {
        self.requests.iter().filter(|r| r.pinned.is_none())
    }

    /// The first unpinned request, if any — the next enumeration axis.
    pub fn first_miss(&self) -> Option<&InputRequest> {
        self.misses().next()
    }
}

/// Concrete values for symbolic inputs, keyed by `(node, name,
/// occurrence)`.
///
/// # Examples
///
/// ```
/// use sde_vm::Preset;
///
/// let mut p = Preset::new();
/// p.insert(2, "drop", 0, 1);
/// assert_eq!(p.get(2, "drop", 0), Some(1));
/// assert_eq!(p.get(2, "drop", 1), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Preset {
    values: HashMap<(u16, String, u32), u64>,
    strict: bool,
    log: Option<Arc<Mutex<RequestLog>>>,
}

// The request log is observation plumbing, not identity: two presets are
// equal when they pin the same values under the same strictness.
impl PartialEq for Preset {
    fn eq(&self, other: &Preset) -> bool {
        self.values == other.values && self.strict == other.strict
    }
}

impl Eq for Preset {}

impl Preset {
    /// An empty preset (every input replays as 0).
    pub fn new() -> Preset {
        Preset::default()
    }

    /// Re-keys a solver model through the symbol table that minted its
    /// variables.
    ///
    /// Replay keys are not guaranteed unique within one symbolic run:
    /// sibling states of the same lineage mint distinct [`SymId`]s
    /// (sde_symbolic::SymId) that share `(node, name, occurrence)`. A
    /// model drawn from one dscenario constrains only one sibling per
    /// key, but an artificially merged model may collide; the iteration
    /// below is in ascending `SymId` order ([`Model::iter`] walks a
    /// `BTreeMap`), so **the latest-minted variable deterministically
    /// wins** (see `tests/preset_roundtrip.rs`).
    pub fn from_model(model: &Model, symbols: &SymbolTable) -> Preset {
        let mut p = Preset::new();
        for (id, value) in model.iter() {
            if let Some(var) = symbols.get(id) {
                let (node, name, occ) = var.replay_key();
                p.values.insert((node, name, occ), value);
            }
        }
        p
    }

    /// Strict mode: replaying an input this preset does not pin becomes a
    /// [`BugKind::UnkeyedInput`](crate::BugKind::UnkeyedInput) bug
    /// instead of defaulting to 0. The conformance oracle replays its
    /// ground-truth assignments strictly so an incomplete assignment can
    /// never masquerade as a legitimate outcome.
    #[must_use]
    pub fn with_strict(mut self) -> Preset {
        self.strict = true;
        self
    }

    /// Whether strict mode is on.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Attaches a fresh, shared [`RequestLog`]: every [`Preset::resolve`]
    /// call is recorded. Keep a clone of [`Preset::log`] to read the
    /// requests back after the engine has consumed the preset.
    #[must_use]
    pub fn recording(mut self) -> Preset {
        self.log = Some(Arc::new(Mutex::new(RequestLog::default())));
        self
    }

    /// The shared request log, when [`Preset::recording`] was called.
    pub fn log(&self) -> Option<Arc<Mutex<RequestLog>>> {
        self.log.clone()
    }

    /// Sets the value of one input.
    pub fn insert(&mut self, node: u16, name: &str, occurrence: u32, value: u64) {
        self.values
            .insert((node, name.to_string(), occurrence), value);
    }

    /// The value of one input, if pinned. Pure lookup: nothing is
    /// recorded — replays resolve inputs through [`Preset::resolve`].
    pub fn get(&self, node: u16, name: &str, occurrence: u32) -> Option<u64> {
        self.values
            .get(&(node, name.to_string(), occurrence))
            .copied()
    }

    /// Resolves one input during replay: looks the key up and (when
    /// recording) appends the request — pinned or missed — to the log.
    /// Returns `None` on a miss; the *caller* decides what a miss means
    /// (default 0 in lenient mode, an
    /// [`UnkeyedInput`](crate::BugKind::UnkeyedInput) bug in strict
    /// mode).
    pub fn resolve(&self, node: u16, name: &str, occurrence: u32, width: Width) -> Option<u64> {
        let pinned = self.get(node, name, occurrence);
        if let Some(log) = &self.log {
            log.lock()
                .expect("request log poisoned")
                .requests
                .push(InputRequest {
                    node,
                    name: name.to_string(),
                    occurrence,
                    width,
                    pinned,
                });
        }
        pinned
    }

    /// Iterates over `(node, name, occurrence, value)` in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &str, u32, u64)> {
        self.values
            .iter()
            .map(|((node, name, occ), v)| (*node, name.as_str(), *occ, *v))
    }

    /// Number of pinned inputs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_model_rekeys() {
        let mut symbols = SymbolTable::new();
        let a = symbols.fresh_keyed("drop", Width::BOOL, 2, 0);
        let b = symbols.fresh_keyed("drop", Width::BOOL, 2, 1);
        let c = symbols.fresh_keyed("x", Width::W8, 0, 0);
        let mut model = Model::new();
        model.assign(a.id(), 1);
        model.assign(b.id(), 0);
        model.assign(c.id(), 42);
        let p = Preset::from_model(&model, &symbols);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(2, "drop", 0), Some(1));
        assert_eq!(p.get(2, "drop", 1), Some(0));
        assert_eq!(p.get(0, "x", 0), Some(42));
        assert_eq!(p.get(1, "drop", 0), None);
    }

    #[test]
    fn from_model_replay_key_collision_latest_symid_wins() {
        // Two sibling variables sharing one replay key: the one minted
        // later (higher SymId) must deterministically win, whatever the
        // assignment order.
        let mut symbols = SymbolTable::new();
        let early = symbols.fresh_keyed("drop", Width::BOOL, 1, 0).id();
        let late = symbols.fresh_keyed("drop", Width::BOOL, 1, 0).id();
        for (first, second) in [((early, 0), (late, 1)), ((late, 1), (early, 0))] {
            let mut model = Model::new();
            model.assign(first.0, first.1);
            model.assign(second.0, second.1);
            let p = Preset::from_model(&model, &symbols);
            assert_eq!(p.len(), 1);
            assert_eq!(p.get(1, "drop", 0), Some(1), "latest-minted value wins");
        }
    }

    #[test]
    fn empty_preset() {
        let p = Preset::new();
        assert!(p.is_empty());
        assert_eq!(p.get(0, "anything", 0), None);
    }

    #[test]
    fn strict_flag_and_equality() {
        let lenient = Preset::new();
        let strict = Preset::new().with_strict();
        assert!(strict.is_strict());
        assert!(!lenient.is_strict());
        assert_ne!(lenient, strict, "strictness is part of preset identity");
        assert_eq!(lenient, lenient.clone().recording(), "the log is not");
    }

    #[test]
    fn resolve_records_hits_and_misses() {
        let mut p = Preset::new();
        p.insert(3, "drop", 0, 1);
        let p = p.recording();
        let log = p.log().expect("recording attached a log");
        assert_eq!(p.resolve(3, "drop", 0, Width::BOOL), Some(1));
        assert_eq!(p.resolve(3, "drop", 1, Width::BOOL), None);
        assert_eq!(p.resolve(0, "reading", 0, Width::W16), None);
        let log = log.lock().unwrap();
        assert_eq!(log.requests.len(), 3);
        assert_eq!(log.requests[0].pinned, Some(1));
        assert_eq!(log.misses().count(), 2);
        let first = log.first_miss().expect("two misses");
        assert_eq!(first.replay_key(), (3, "drop".to_string(), 1));
        assert_eq!(first.width, Width::BOOL);
    }

    #[test]
    fn resolve_without_log_is_plain_lookup() {
        let mut p = Preset::new();
        p.insert(0, "x", 0, 7);
        assert_eq!(p.resolve(0, "x", 0, Width::W8), Some(7));
        assert_eq!(p.resolve(0, "x", 1, Width::W8), None);
        assert!(p.log().is_none());
    }

    #[test]
    fn iter_walks_all_pins() {
        let mut p = Preset::new();
        p.insert(0, "x", 0, 7);
        p.insert(2, "drop", 1, 1);
        let mut entries: Vec<(u16, String, u32, u64)> = p
            .iter()
            .map(|(n, name, o, v)| (n, name.to_string(), o, v))
            .collect();
        entries.sort();
        assert_eq!(
            entries,
            vec![(0, "x".to_string(), 0, 7), (2, "drop".to_string(), 1, 1),]
        );
    }
}
