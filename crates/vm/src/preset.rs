//! Replay presets: concrete values for symbolic inputs, keyed
//! run-independently.
//!
//! A solver [`Model`] identifies inputs by [`SymId`] — the *global*
//! creation index, which differs between a forking symbolic run and its
//! non-forking concrete replay. A [`Preset`] re-keys the model by each
//! input's [`replay key`](sde_symbolic::SymVar::replay_key)
//! `(node, name, per-lineage occurrence)`, which is stable across runs of
//! the same scenario.

use sde_symbolic::{Model, SymbolTable};
use std::collections::HashMap;

/// Concrete values for symbolic inputs, keyed by `(node, name,
/// occurrence)`.
///
/// # Examples
///
/// ```
/// use sde_vm::Preset;
///
/// let mut p = Preset::new();
/// p.insert(2, "drop", 0, 1);
/// assert_eq!(p.get(2, "drop", 0), Some(1));
/// assert_eq!(p.get(2, "drop", 1), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Preset {
    values: HashMap<(u16, String, u32), u64>,
}

impl Preset {
    /// An empty preset (every input replays as 0).
    pub fn new() -> Preset {
        Preset::default()
    }

    /// Re-keys a solver model through the symbol table that minted its
    /// variables.
    pub fn from_model(model: &Model, symbols: &SymbolTable) -> Preset {
        let mut p = Preset::new();
        for (id, value) in model.iter() {
            if let Some(var) = symbols.get(id) {
                let (node, name, occ) = var.replay_key();
                p.values.insert((node, name, occ), value);
            }
        }
        p
    }

    /// Sets the value of one input.
    pub fn insert(&mut self, node: u16, name: &str, occurrence: u32, value: u64) {
        self.values
            .insert((node, name.to_string(), occurrence), value);
    }

    /// The value of one input, if pinned.
    pub fn get(&self, node: u16, name: &str, occurrence: u32) -> Option<u64> {
        self.values
            .get(&(node, name.to_string(), occurrence))
            .copied()
    }

    /// Number of pinned inputs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sde_symbolic::Width;

    #[test]
    fn from_model_rekeys() {
        let mut symbols = SymbolTable::new();
        let a = symbols.fresh_keyed("drop", Width::BOOL, 2, 0);
        let b = symbols.fresh_keyed("drop", Width::BOOL, 2, 1);
        let c = symbols.fresh_keyed("x", Width::W8, 0, 0);
        let mut model = Model::new();
        model.assign(a.id(), 1);
        model.assign(b.id(), 0);
        model.assign(c.id(), 42);
        let p = Preset::from_model(&model, &symbols);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(2, "drop", 0), Some(1));
        assert_eq!(p.get(2, "drop", 1), Some(0));
        assert_eq!(p.get(0, "x", 0), Some(42));
        assert_eq!(p.get(1, "drop", 0), None);
    }

    #[test]
    fn empty_preset() {
        let p = Preset::new();
        assert!(p.is_empty());
        assert_eq!(p.get(0, "anything", 0), None);
    }
}
