//! Bug reports produced by the interpreter's safety checks.

use crate::isa::{FuncId, Loc};
use sde_symbolic::{CodecError, Model, SnapReader, SnapWriter};
use std::fmt;
use std::sync::Arc;

/// Classes of bugs the VM detects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BugKind {
    /// An `Assert` condition can be (or definitely is) false.
    AssertFailed,
    /// A division or remainder whose divisor can be zero.
    DivisionByZero,
    /// A memory access outside the configured memory size.
    OutOfBounds {
        /// The offending concrete address.
        addr: u64,
    },
    /// A memory access or send whose address/destination stays symbolic
    /// and multi-valued under the path condition.
    SymbolicPointer,
    /// An explicit `Fail` instruction was reached.
    ExplicitFail,
    /// The interpreter hit a malformed situation (bad register width,
    /// missing function, call-stack overflow) — a program bug rather than
    /// a software-under-test bug, but reported the same way.
    Internal,
    /// A strict replay [`Preset`](crate::Preset) had no value for a
    /// requested symbolic input. Lenient replays default such inputs to
    /// 0; the conformance oracle replays strictly, where a missing key
    /// means the assignment (or the solve that produced it) was
    /// incomplete and must not be papered over.
    UnkeyedInput,
    /// A registered invariant of the checking layer
    /// (`sde-core::check`) was violated: a node-local or cross-node
    /// predicate over the explored states is satisfiable together with
    /// their path conditions.
    InvariantViolated,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::AssertFailed => write!(f, "assertion failed"),
            BugKind::DivisionByZero => write!(f, "division by zero"),
            BugKind::OutOfBounds { addr } => write!(f, "out-of-bounds access at {addr:#x}"),
            BugKind::SymbolicPointer => write!(f, "unresolvable symbolic pointer"),
            BugKind::ExplicitFail => write!(f, "explicit failure"),
            BugKind::Internal => write!(f, "internal interpreter error"),
            BugKind::UnkeyedInput => write!(f, "unkeyed input in strict replay"),
            BugKind::InvariantViolated => write!(f, "invariant violated"),
        }
    }
}

/// A concrete, replayable bug found on one execution path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugReport {
    /// What went wrong.
    pub kind: BugKind,
    /// Message supplied by the program (assert/fail) or the interpreter.
    pub message: Arc<str>,
    /// Where it went wrong.
    pub loc: Loc,
    /// A witness assignment of the symbolic inputs reaching the bug, when
    /// the solver produced one.
    pub model: Option<Model>,
}

impl BugReport {
    /// Serializes the report into `w` (snapshot codec).
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        match self.kind {
            BugKind::AssertFailed => w.u8(0),
            BugKind::DivisionByZero => w.u8(1),
            BugKind::OutOfBounds { addr } => {
                w.u8(2);
                w.varint(addr);
            }
            BugKind::SymbolicPointer => w.u8(3),
            BugKind::ExplicitFail => w.u8(4),
            BugKind::Internal => w.u8(5),
            BugKind::UnkeyedInput => w.u8(6),
            BugKind::InvariantViolated => w.u8(7),
        }
        w.str(&self.message);
        w.varint(u64::from(self.loc.func.0));
        w.varint(u64::from(self.loc.index));
        match &self.model {
            Some(m) => {
                w.bool(true);
                w.model(m);
            }
            None => w.bool(false),
        }
    }

    /// Decodes a report written by [`BugReport::write_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed input; never
    /// panics.
    pub fn read_snapshot(r: &mut SnapReader<'_>) -> Result<BugReport, CodecError> {
        let kind = match r.u8()? {
            0 => BugKind::AssertFailed,
            1 => BugKind::DivisionByZero,
            2 => BugKind::OutOfBounds { addr: r.varint()? },
            3 => BugKind::SymbolicPointer,
            4 => BugKind::ExplicitFail,
            5 => BugKind::Internal,
            6 => BugKind::UnkeyedInput,
            7 => BugKind::InvariantViolated,
            _ => return Err(CodecError::Malformed("bug kind tag")),
        };
        let message: Arc<str> = Arc::from(r.str()?.as_str());
        let func =
            FuncId(u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("bug function"))?);
        let index = u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("bug index"))?;
        let model = if r.bool()? { Some(r.model()?) } else { None };
        Ok(BugReport {
            kind,
            message,
            loc: Loc { func, index },
            model,
        })
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.loc, self.message)?;
        if let Some(m) = &self.model {
            write!(f, " (witness {m})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::FuncId;

    #[test]
    fn display() {
        let r = BugReport {
            kind: BugKind::DivisionByZero,
            message: Arc::from("udiv"),
            loc: Loc {
                func: FuncId(0),
                index: 4,
            },
            model: None,
        };
        assert_eq!(r.to_string(), "division by zero at f0@4: udiv");
    }
}
