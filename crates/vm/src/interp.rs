//! The symbolic interpreter: single-step semantics plus a local driver.

use crate::bug::{BugKind, BugReport};
use crate::isa::{Inst, Loc};
use crate::program::Program;
use crate::state::{Frame, Status, VmState};
use sde_symbolic::{BinOp, CastOp, Expr, ExprRef, Solver, SymbolTable, UnOp, Width};
use std::sync::Arc;

/// Maximum call-stack depth before the interpreter reports an internal bug.
const MAX_CALL_DEPTH: usize = 128;

/// Environment for interpretation: the solver deciding branch feasibility,
/// the symbol table minting fresh symbolic inputs, and the per-invocation
/// facts (`now`, `node_id`) exposed to the program.
#[derive(Debug)]
pub struct VmCtx<'a> {
    /// The constraint solver consulted for branch feasibility.
    pub solver: &'a Solver,
    /// Allocator for fresh symbolic inputs (shared across all nodes).
    pub symbols: &'a mut SymbolTable,
    /// Current virtual time in milliseconds (returned by `Now`).
    pub now: u64,
    /// Identity of the executing node (returned by `MyId`).
    pub node_id: u16,
    /// Replay mode: when set, `MakeSymbolic` still allocates the variable
    /// (so later inputs keep fresh identities) but yields the preset's
    /// concrete value — looked up by the run-independent replay key
    /// `(node, name, occurrence)` — instead of a symbolic term, so the
    /// execution follows exactly one path.
    pub preset: Option<&'a crate::Preset>,
}

impl<'a> VmCtx<'a> {
    /// Creates a context at time 0 for node 0.
    pub fn new(solver: &'a Solver, symbols: &'a mut SymbolTable) -> Self {
        VmCtx {
            solver,
            symbols,
            now: 0,
            node_id: 0,
            preset: None,
        }
    }
}

/// An environment interaction requested by the program; the caller (the
/// SDE engine, or tests) decides what it means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Transmit a packet to the node with the given id.
    Send {
        /// Destination node id.
        dest: u16,
        /// Payload values (possibly symbolic).
        payload: Vec<ExprRef>,
    },
    /// Arm a one-shot timer.
    SetTimer {
        /// Delay in virtual milliseconds.
        delay: u64,
        /// Timer id handed to the `on_timer` handler.
        timer: u16,
    },
}

/// Result of executing one instruction on a state.
#[derive(Debug)]
pub enum StepResult {
    /// Ordinary progress; step again.
    Continue,
    /// The state forked. `self` took one side; the returned sibling took
    /// the other (the sibling may already be [`Status::Bugged`], e.g. the
    /// failing side of an assert).
    Forked(VmState),
    /// The program performed an environment call; the state continues.
    Syscall(Syscall),
    /// The handler returned; the state is [`Status::Idle`] again.
    HandlerDone(Option<ExprRef>),
    /// The program halted for good.
    Halted,
    /// The path condition became unsatisfiable; discard the state.
    Infeasible,
    /// A bug was found on this path; the state is [`Status::Bugged`].
    Bug(BugReport),
}

/// Executes one instruction of `state`.
///
/// # Panics
///
/// Panics when `state` is not [`Status::Running`] (drive states through
/// [`VmState::prepared`] first), or when the program is malformed in ways
/// the [`ProgramBuilder`](crate::ProgramBuilder) rules out (dangling
/// function ids, out-of-range jump targets).
pub fn step(program: &Program, state: &mut VmState, ctx: &mut VmCtx<'_>) -> StepResult {
    assert_eq!(state.status, Status::Running, "step on a non-running state");
    let frame = state.frames.last().expect("running state has a frame");
    let func_id = frame.func;
    let pc = frame.pc;
    let loc = Loc {
        func: func_id,
        index: pc,
    };
    let inst = program
        .function(func_id)
        .inst(pc)
        .unwrap_or_else(|| panic!("pc {loc} out of range"))
        .clone();
    state.instret += 1;

    macro_rules! bug {
        ($kind:expr, $msg:expr) => {{
            let report = BugReport {
                kind: $kind,
                message: Arc::from($msg),
                loc,
                model: ctx.solver.model(&state.path),
            };
            state.status = Status::Bugged(report.clone());
            return StepResult::Bug(report);
        }};
    }

    macro_rules! reg {
        ($r:expr) => {{
            match state.frames.last().expect("frame").regs.get($r.0 as usize) {
                Some(Some(v)) => v.clone(),
                _ => bug!(
                    BugKind::Internal,
                    format!("read of uninitialized register {}", $r)
                ),
            }
        }};
    }

    macro_rules! set_reg {
        ($r:expr, $v:expr) => {{
            let f = state.frames.last_mut().expect("frame");
            match f.regs.get_mut($r.0 as usize) {
                Some(slot) => *slot = Some($v),
                None => bug!(
                    BugKind::Internal,
                    format!("write to out-of-range register {}", $r)
                ),
            }
        }};
    }

    macro_rules! advance {
        () => {{
            state.frames.last_mut().expect("frame").pc += 1;
        }};
    }

    match inst {
        Inst::Nop => {
            advance!();
            StepResult::Continue
        }
        Inst::Const { dst, value, width } => {
            set_reg!(dst, Expr::const_(value, width));
            advance!();
            StepResult::Continue
        }
        Inst::Mov { dst, src } => {
            let v = reg!(src);
            set_reg!(dst, v);
            advance!();
            StepResult::Continue
        }
        Inst::Un { op, dst, src } => {
            let v = reg!(src);
            let r = match op {
                UnOp::Not => Expr::not(v),
                UnOp::Neg => Expr::neg(v),
            };
            set_reg!(dst, r);
            advance!();
            StepResult::Continue
        }
        Inst::Cast { op, to, dst, src } => {
            let v = reg!(src);
            let r = match op {
                CastOp::Zext => Expr::zext(v, to),
                CastOp::Sext => Expr::sext(v, to),
                CastOp::Trunc => Expr::trunc(v, to),
            };
            set_reg!(dst, r);
            advance!();
            StepResult::Continue
        }
        Inst::Select {
            dst,
            cond,
            then,
            els,
        } => {
            let c = reg!(cond);
            let t = reg!(then);
            let e = reg!(els);
            if c.width() != Width::BOOL {
                bug!(BugKind::Internal, "select condition is not width-1");
            }
            set_reg!(dst, Expr::ite(c, t, e));
            advance!();
            StepResult::Continue
        }
        Inst::Bin { op, dst, lhs, rhs } => {
            let a = reg!(lhs);
            let b = reg!(rhs);
            if a.width() != b.width() {
                bug!(
                    BugKind::Internal,
                    format!("width mismatch {} vs {}", a.width(), b.width())
                );
            }
            // Division safety: fork off the divisor-zero path as a bug.
            if matches!(op, BinOp::UDiv | BinOp::URem | BinOp::SDiv | BinOp::SRem) {
                let zero = Expr::const_(0, b.width());
                let is_zero = Expr::eq(b.clone(), zero);
                match decide(ctx.solver, state, &is_zero) {
                    Decision::AlwaysTrue => bug!(BugKind::DivisionByZero, format!("{op:?}")),
                    Decision::AlwaysFalse => {}
                    Decision::Either => {
                        // Sibling: divisor is zero — a bug path.
                        let mut sibling = state.clone();
                        sibling.path_push(is_zero.clone());
                        let report = BugReport {
                            kind: BugKind::DivisionByZero,
                            message: Arc::from(format!("{op:?}")),
                            loc,
                            model: ctx.solver.model(&sibling.path),
                        };
                        sibling.status = Status::Bugged(report);
                        // Self: divisor is nonzero; continue with the op.
                        state.path_push(Expr::not(is_zero));
                        let r = apply_binop(op, a, b);
                        set_reg!(dst, r);
                        advance!();
                        return StepResult::Forked(sibling);
                    }
                }
            }
            let r = apply_binop(op, a, b);
            set_reg!(dst, r);
            advance!();
            StepResult::Continue
        }
        Inst::Jmp { target } => {
            state.frames.last_mut().expect("frame").pc = target;
            StepResult::Continue
        }
        Inst::Br {
            cond,
            then_target,
            else_target,
        } => {
            let c = reg!(cond);
            if c.width() != Width::BOOL {
                bug!(BugKind::Internal, "branch condition is not width-1");
            }
            match decide(ctx.solver, state, &c) {
                Decision::AlwaysTrue => {
                    // Replay mode: conditions are concrete, so branches
                    // never fork — record the decision anyway so the
                    // replay's path digest identifies the path taken
                    // (the conformance oracle compares replays by path
                    // class). Symbolic runs leave decided branches out of
                    // the digest, as before.
                    if ctx.preset.is_some() {
                        state.record_branch(loc, true);
                    }
                    state.frames.last_mut().expect("frame").pc = then_target;
                    StepResult::Continue
                }
                Decision::AlwaysFalse => {
                    if ctx.preset.is_some() {
                        state.record_branch(loc, false);
                    }
                    state.frames.last_mut().expect("frame").pc = else_target;
                    StepResult::Continue
                }
                Decision::Either => {
                    let mut sibling = state.clone();
                    sibling.path_push(Expr::not(c.clone()));
                    sibling.frames.last_mut().expect("frame").pc = else_target;
                    sibling.record_branch(loc, false);
                    state.path_push(c);
                    state.frames.last_mut().expect("frame").pc = then_target;
                    state.record_branch(loc, true);
                    StepResult::Forked(sibling)
                }
            }
        }
        Inst::Call { func, args, dst } => {
            if state.frames.len() >= MAX_CALL_DEPTH {
                bug!(BugKind::Internal, "call-stack overflow");
            }
            let callee = program.function(func);
            if usize::from(callee.param_count()) != args.len() {
                bug!(
                    BugKind::Internal,
                    format!("arity mismatch calling {}", callee.name())
                );
            }
            let mut arg_values = Vec::with_capacity(args.len());
            for a in &args {
                arg_values.push(reg!(*a));
            }
            // Return to the next instruction of the caller.
            advance!();
            let mut regs: Vec<Option<ExprRef>> = vec![None; usize::from(callee.reg_count())];
            for (i, v) in arg_values.into_iter().enumerate() {
                regs[i] = Some(v);
            }
            state.frames.push(Frame {
                func,
                pc: 0,
                regs,
                ret_dst: dst,
            });
            StepResult::Continue
        }
        Inst::Ret { val } => {
            let ret_value = match val {
                Some(r) => Some(reg!(r)),
                None => None,
            };
            let finished = state.frames.pop().expect("frame");
            if state.frames.is_empty() {
                state.status = Status::Idle;
                return StepResult::HandlerDone(ret_value);
            }
            if let Some(dst) = finished.ret_dst {
                match ret_value.clone() {
                    Some(v) => set_reg!(dst, v),
                    None => bug!(
                        BugKind::Internal,
                        "callee returned no value into a destination"
                    ),
                }
            }
            StepResult::Continue
        }
        Inst::MakeSymbolic { dst, name, width } => {
            let occurrence = state.next_input_occurrence(&name);
            let var = ctx
                .symbols
                .fresh_keyed(&name, width, ctx.node_id, occurrence);
            let value = match ctx.preset {
                Some(preset) => {
                    match preset.resolve(ctx.node_id, &name, occurrence, width) {
                        Some(v) => Expr::const_(v, width),
                        // Strict replay: an unpinned input is an error,
                        // not a 0 — defaulting would let an incomplete
                        // solve or enumeration masquerade as a real run.
                        None if preset.is_strict() => bug!(
                            BugKind::UnkeyedInput,
                            format!(
                                "strict replay has no value for input \
                                 `{name}` (occurrence {occurrence}) on node {}",
                                ctx.node_id
                            )
                        ),
                        // Lenient replay: inputs absent from the preset
                        // were unconstrained — any value replays the
                        // path; use 0.
                        None => Expr::const_(0, width),
                    }
                }
                None => Expr::sym(var),
            };
            set_reg!(dst, value);
            advance!();
            StepResult::Continue
        }
        Inst::Send { dest, payload } => {
            let d = reg!(dest);
            let dest_id = match concretize(ctx.solver, state, &d) {
                Some(v) => v as u16,
                None => bug!(BugKind::SymbolicPointer, "send destination is symbolic"),
            };
            let mut values = Vec::with_capacity(payload.len());
            for p in &payload {
                values.push(reg!(*p));
            }
            advance!();
            StepResult::Syscall(Syscall::Send {
                dest: dest_id,
                payload: values,
            })
        }
        Inst::SetTimer { delay, timer } => {
            let d = reg!(delay);
            let delay_ms = match concretize(ctx.solver, state, &d) {
                Some(v) => v,
                None => bug!(BugKind::SymbolicPointer, "timer delay is symbolic"),
            };
            advance!();
            StepResult::Syscall(Syscall::SetTimer {
                delay: delay_ms,
                timer,
            })
        }
        Inst::Now { dst } => {
            set_reg!(dst, Expr::const_(ctx.now, Width::W64));
            advance!();
            StepResult::Continue
        }
        Inst::MyId { dst } => {
            set_reg!(dst, Expr::const_(u64::from(ctx.node_id), Width::W16));
            advance!();
            StepResult::Continue
        }
        Inst::Assert { cond, msg } => {
            let c = reg!(cond);
            if c.width() != Width::BOOL {
                bug!(BugKind::Internal, "assert condition is not width-1");
            }
            match decide(ctx.solver, state, &c) {
                Decision::AlwaysTrue => {
                    advance!();
                    StepResult::Continue
                }
                Decision::AlwaysFalse => bug!(BugKind::AssertFailed, msg.to_string()),
                Decision::Either => {
                    let mut sibling = state.clone();
                    sibling.path_push(Expr::not(c.clone()));
                    let report = BugReport {
                        kind: BugKind::AssertFailed,
                        message: msg.clone(),
                        loc,
                        model: ctx.solver.model(&sibling.path),
                    };
                    sibling.status = Status::Bugged(report);
                    state.path_push(c);
                    advance!();
                    StepResult::Forked(sibling)
                }
            }
        }
        Inst::Assume { cond } => {
            let c = reg!(cond);
            if c.width() != Width::BOOL {
                bug!(BugKind::Internal, "assume condition is not width-1");
            }
            state.path_push(c);
            if state.path.is_trivially_false() || !may_hold(ctx.solver, &state.path) {
                state.status = Status::Infeasible;
                return StepResult::Infeasible;
            }
            advance!();
            StepResult::Continue
        }
        Inst::Fail { msg } => bug!(BugKind::ExplicitFail, msg.to_string()),
        Inst::Halt => {
            state.status = Status::Halted;
            state.frames.clear();
            StepResult::Halted
        }
        Inst::Load { dst, addr, width } => {
            let a = reg!(addr);
            let Some(base) = concretize(ctx.solver, state, &a) else {
                bug!(BugKind::SymbolicPointer, "load address is symbolic");
            };
            let nbytes = u64::from(width.bits()) / 8;
            if width.bits() % 8 != 0 {
                bug!(BugKind::Internal, "load width is not byte-sized");
            }
            if base + nbytes > u64::from(state.memory_size) {
                bug!(BugKind::OutOfBounds { addr: base }, "load");
            }
            // Compose little-endian bytes.
            let mut value: Option<ExprRef> = None;
            for i in 0..nbytes {
                let byte = state.memory_byte((base + i) as u32);
                let wide = Expr::zext(byte, width);
                let shifted = Expr::shl(wide, Expr::const_(8 * i, width));
                value = Some(match value {
                    None => shifted,
                    Some(acc) => Expr::or(acc, shifted),
                });
            }
            set_reg!(dst, value.expect("width >= 8 bits"));
            advance!();
            StepResult::Continue
        }
        Inst::Store { addr, src } => {
            let a = reg!(addr);
            let v = reg!(src);
            let Some(base) = concretize(ctx.solver, state, &a) else {
                bug!(BugKind::SymbolicPointer, "store address is symbolic");
            };
            let width = v.width();
            if width.bits() % 8 != 0 {
                bug!(BugKind::Internal, "store width is not byte-sized");
            }
            let nbytes = u64::from(width.bits()) / 8;
            if base + nbytes > u64::from(state.memory_size) {
                bug!(BugKind::OutOfBounds { addr: base }, "store");
            }
            for i in 0..nbytes {
                let byte =
                    Expr::trunc(Expr::lshr(v.clone(), Expr::const_(8 * i, width)), Width::W8);
                state.heap_store((base + i) as u32, byte);
            }
            advance!();
            StepResult::Continue
        }
    }
}

/// Three-valued feasibility of a width-1 condition under a state's path
/// condition.
enum Decision {
    AlwaysTrue,
    AlwaysFalse,
    Either,
}

fn decide(solver: &Solver, state: &VmState, cond: &ExprRef) -> Decision {
    if cond.is_true() {
        return Decision::AlwaysTrue;
    }
    if cond.is_false() {
        return Decision::AlwaysFalse;
    }
    let may_true = solver.may_be_true(&state.path, cond);
    let may_false = solver.may_be_true(&state.path, &Expr::not(cond.clone()));
    match (may_true, may_false) {
        (true, true) => Decision::Either,
        (true, false) => Decision::AlwaysTrue,
        (false, true) => Decision::AlwaysFalse,
        // Path condition itself unsatisfiable; either answer is vacuous.
        (false, false) => Decision::AlwaysFalse,
    }
}

fn may_hold(solver: &Solver, pc: &sde_symbolic::PathCondition) -> bool {
    !solver.check(pc).is_unsat()
}

/// Resolves an expression to a unique concrete value under the path
/// condition, or `None` when it stays multi-valued (or the solver cannot
/// decide within budget).
fn concretize(solver: &Solver, state: &VmState, value: &ExprRef) -> Option<u64> {
    if let Some(v) = value.as_const() {
        return Some(v);
    }
    let model = solver.model(&state.path)?;
    let v = value.eval(&model)?;
    let unique = solver.must_be_true(
        &state.path,
        &Expr::eq(value.clone(), Expr::const_(v, value.width())),
    );
    unique.then_some(v)
}

fn apply_binop(op: BinOp, a: ExprRef, b: ExprRef) -> ExprRef {
    match op {
        BinOp::Add => Expr::add(a, b),
        BinOp::Sub => Expr::sub(a, b),
        BinOp::Mul => Expr::mul(a, b),
        BinOp::UDiv => Expr::udiv(a, b),
        BinOp::URem => Expr::urem(a, b),
        BinOp::SDiv => Expr::sdiv(a, b),
        BinOp::SRem => Expr::srem(a, b),
        BinOp::And => Expr::and(a, b),
        BinOp::Or => Expr::or(a, b),
        BinOp::Xor => Expr::xor(a, b),
        BinOp::Shl => Expr::shl(a, b),
        BinOp::LShr => Expr::lshr(a, b),
        BinOp::AShr => Expr::ashr(a, b),
        BinOp::Eq => Expr::eq(a, b),
        BinOp::Ne => Expr::ne(a, b),
        BinOp::Ult => Expr::ult(a, b),
        BinOp::Ule => Expr::ule(a, b),
        BinOp::Slt => Expr::slt(a, b),
        BinOp::Sle => Expr::sle(a, b),
    }
}

/// Everything that came out of running one handler to completion on one
/// initial state (plus all states forked along the way).
#[derive(Debug, Default)]
pub struct HandlerOutcome {
    /// States that completed the handler ([`Status::Idle`]) or halted,
    /// each with the environment calls it performed, in order.
    pub finished: Vec<(VmState, Vec<Syscall>)>,
    /// States that ended in a bug.
    pub bugged: Vec<VmState>,
    /// Number of states discarded as infeasible.
    pub infeasible: usize,
}

/// Runs `initial` (a state returned by [`VmState::prepared`]) until every
/// descendant state finishes the handler, halts, errors out, or becomes
/// infeasible.
///
/// This is the *local* driver used by tests, examples and single-node
/// exploration; the distributed engine in `sde-core` drives [`step`]
/// itself so it can interleave state mapping with packet transmission.
///
/// # Panics
///
/// Panics after 10 million steps (runaway program guard).
pub fn run_to_completion(
    program: &Program,
    initial: VmState,
    ctx: &mut VmCtx<'_>,
) -> HandlerOutcome {
    let mut outcome = HandlerOutcome::default();
    let mut worklist: Vec<(VmState, Vec<Syscall>)> = vec![(initial, Vec::new())];
    let mut steps: u64 = 0;
    while let Some((mut state, mut effects)) = worklist.pop() {
        loop {
            steps += 1;
            assert!(
                steps < 10_000_000,
                "run_to_completion: step budget exhausted"
            );
            match step(program, &mut state, ctx) {
                StepResult::Continue => {}
                StepResult::Forked(sibling) => {
                    if let Status::Bugged(_) = sibling.status {
                        outcome.bugged.push(sibling);
                    } else {
                        worklist.push((sibling, effects.clone()));
                    }
                }
                StepResult::Syscall(sc) => effects.push(sc),
                StepResult::HandlerDone(_) | StepResult::Halted => {
                    outcome.finished.push((state, effects));
                    break;
                }
                StepResult::Infeasible => {
                    outcome.infeasible += 1;
                    break;
                }
                StepResult::Bug(_) => {
                    outcome.bugged.push(state);
                    break;
                }
            }
        }
    }
    outcome
}

impl VmState {
    /// Folds an *environment-level* branch (network failure model fork)
    /// into the path digest and trace, so states that differ only in a
    /// failure decision have distinct path identities. `kind` identifies
    /// the failure model and `occurrence` the per-lineage instance — both
    /// run-independent.
    pub fn record_external_branch(&mut self, kind: u32, occurrence: u32, taken: bool) {
        let loc = Loc {
            func: crate::isa::FuncId(0xffff_0000 | kind),
            index: occurrence,
        };
        self.record_branch(loc, taken);
    }

    /// Folds a decided symbolic branch into the path digest and trace.
    pub(crate) fn record_branch(&mut self, loc: Loc, taken: bool) {
        self.branch_trace = self.branch_trace.prepend((loc, taken));
        // FNV-1a over (func, index, taken).
        let mut h = self.path_digest;
        for byte in loc
            .func
            .0
            .to_le_bytes()
            .into_iter()
            .chain(loc.index.to_le_bytes())
            .chain([u8::from(taken)])
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.path_digest = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use sde_symbolic::Width;

    fn ctx_parts() -> (Solver, SymbolTable) {
        (Solver::new(), SymbolTable::new())
    }

    fn run(program: &Program, handler: &str) -> HandlerOutcome {
        let (solver, mut symbols) = ctx_parts();
        let mut ctx = VmCtx::new(&solver, &mut symbols);
        let state = VmState::fresh(program);
        run_to_completion(
            program,
            state.prepared(program, handler, &[]).unwrap(),
            &mut ctx,
        )
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let a = f.imm(20, Width::W8);
            let b = f.imm(22, Width::W8);
            let c = f.reg();
            f.bin(BinOp::Add, c, a, b);
            let expected = f.imm(42, Width::W8);
            let ok = f.reg();
            f.bin(BinOp::Eq, ok, c, expected);
            f.assert(ok, "sum");
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 1);
        assert!(out.bugged.is_empty());
    }

    #[test]
    fn symbolic_branch_forks_both_paths() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let x = f.reg();
            f.make_symbolic(x, "x", Width::W8);
            let ten = f.imm(10, Width::W8);
            let c = f.reg();
            f.bin(BinOp::Ult, c, x, ten);
            let (lo, hi) = (f.label(), f.label());
            f.br(c, lo, hi);
            f.place(lo);
            f.ret(None);
            f.place(hi);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 2);
        // The two paths have distinct digests and distinct path conditions.
        let (a, b) = (&out.finished[0].0, &out.finished[1].0);
        assert_ne!(a.path_digest(), b.path_digest());
        assert_eq!(a.path_condition().len(), 1);
        assert_eq!(b.path_condition().len(), 1);
    }

    #[test]
    fn figure_one_program_explores_four_paths() {
        // The paper's Fig. 1: x==0; x<50; x>10 — four feasible paths.
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let x = f.reg();
            f.make_symbolic(x, "x", Width::W8);
            let zero = f.imm(0, Width::W8);
            let c0 = f.reg();
            f.bin(BinOp::Eq, c0, x, zero);
            let (z, nz) = (f.label(), f.label());
            f.br(c0, z, nz);
            f.place(z);
            f.ret(None);
            f.place(nz);
            let fifty = f.imm(50, Width::W8);
            let c1 = f.reg();
            f.bin(BinOp::Ult, c1, x, fifty);
            let (lt, ge) = (f.label(), f.label());
            f.br(c1, lt, ge);
            f.place(lt);
            let ten = f.imm(10, Width::W8);
            let c2 = f.reg();
            f.bin(BinOp::Ult, c2, ten, x);
            let (gt, le) = (f.label(), f.label());
            f.br(c2, gt, le);
            f.place(gt);
            f.ret(None);
            f.place(le);
            f.ret(None);
            f.place(ge);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 4);
        // All four digests distinct.
        let mut digests: Vec<u64> = out.finished.iter().map(|(s, _)| s.path_digest()).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), 4);
    }

    #[test]
    fn infeasible_branch_does_not_fork() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let x = f.reg();
            f.make_symbolic(x, "x", Width::W8);
            let five = f.imm(5, Width::W8);
            let lt5 = f.reg();
            f.bin(BinOp::Ult, lt5, x, five);
            f.assume(lt5);
            // x < 5 implies x < 10: no fork on the second branch.
            let ten = f.imm(10, Width::W8);
            let lt10 = f.reg();
            f.bin(BinOp::Ult, lt10, x, ten);
            let (a, b) = (f.label(), f.label());
            f.br(lt10, a, b);
            f.place(a);
            f.ret(None);
            f.place(b);
            f.fail("unreachable");
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 1);
        assert!(out.bugged.is_empty());
    }

    #[test]
    fn assert_forks_a_bug_state() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let x = f.reg();
            f.make_symbolic(x, "x", Width::W8);
            let limit = f.imm(200, Width::W8);
            let ok = f.reg();
            f.bin(BinOp::Ult, ok, x, limit);
            f.assert(ok, "x must stay below 200");
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 1);
        assert_eq!(out.bugged.len(), 1);
        match out.bugged[0].status() {
            Status::Bugged(report) => {
                assert_eq!(report.kind, BugKind::AssertFailed);
                let model = report.model.as_ref().expect("witness model");
                let (_, v) = model.iter().next().expect("x assigned");
                assert!(v >= 200, "witness {v} does not trigger the bug");
            }
            other => panic!("expected bugged, got {other:?}"),
        }
    }

    #[test]
    fn division_by_symbolic_zero_forks_bug() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let d = f.reg();
            f.make_symbolic(d, "d", Width::W8);
            let one = f.imm(1, Width::W8);
            let q = f.reg();
            f.bin(BinOp::UDiv, q, one, d);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 1);
        assert_eq!(out.bugged.len(), 1);
        match out.bugged[0].status() {
            Status::Bugged(r) => assert_eq!(r.kind, BugKind::DivisionByZero),
            other => panic!("{other:?}"),
        }
        // The surviving path knows d != 0.
        assert_eq!(out.finished[0].0.path_condition().len(), 1);
    }

    #[test]
    fn memory_roundtrip_across_widths() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let addr = f.imm(100, Width::W32);
            let v = f.imm(0xdead, Width::W16);
            f.store(addr, v);
            let lo_addr = f.imm(100, Width::W32);
            let lo = f.reg();
            f.load(lo, lo_addr, Width::W8);
            let expect_lo = f.imm(0xad, Width::W8);
            let ok1 = f.reg();
            f.bin(BinOp::Eq, ok1, lo, expect_lo);
            f.assert(ok1, "low byte");
            let full_addr = f.imm(100, Width::W32);
            let full = f.reg();
            f.load(full, full_addr, Width::W16);
            let expect = f.imm(0xdead, Width::W16);
            let ok2 = f.reg();
            f.bin(BinOp::Eq, ok2, full, expect);
            f.assert(ok2, "full halfword");
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert!(
            out.bugged.is_empty(),
            "{:?}",
            out.bugged.first().map(|s| s.status().clone())
        );
        assert_eq!(out.finished.len(), 1);
        assert_eq!(out.finished[0].0.memory_footprint(), 2);
    }

    #[test]
    fn out_of_bounds_store_is_a_bug() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let addr = f.imm(u64::from(crate::state::DEFAULT_MEMORY_SIZE), Width::W32);
            let v = f.imm(1, Width::W8);
            f.store(addr, v);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.bugged.len(), 1);
        match out.bugged[0].status() {
            Status::Bugged(r) => assert!(matches!(r.kind, BugKind::OutOfBounds { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn calls_and_returns() {
        let mut pb = ProgramBuilder::new();
        pb.function("double", 1, |f| {
            let two = f.imm(2, Width::W8);
            let r = f.reg();
            f.bin(BinOp::Mul, r, f.param(0), two);
            f.ret(Some(r));
        });
        pb.function("main", 0, |f| {
            let x = f.imm(21, Width::W8);
            let y = f.reg();
            f.call("double", &[x], Some(y));
            let expect = f.imm(42, Width::W8);
            let ok = f.reg();
            f.bin(BinOp::Eq, ok, y, expect);
            f.assert(ok, "double(21) == 42");
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert!(out.bugged.is_empty());
        assert_eq!(out.finished.len(), 1);
    }

    #[test]
    fn syscalls_are_surfaced_in_order() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let dest = f.imm(7, Width::W16);
            let v = f.imm(0x55, Width::W8);
            f.send(dest, &[v]);
            let delay = f.imm(1000, Width::W64);
            f.set_timer(delay, 3);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 1);
        let effects = &out.finished[0].1;
        assert_eq!(effects.len(), 2);
        match &effects[0] {
            Syscall::Send { dest, payload } => {
                assert_eq!(*dest, 7);
                assert_eq!(payload[0].as_const(), Some(0x55));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            effects[1],
            Syscall::SetTimer {
                delay: 1000,
                timer: 3
            }
        );
    }

    #[test]
    fn now_and_my_id_come_from_ctx() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            let t = f.reg();
            f.now(t);
            let expect_t = f.imm(12345, Width::W64);
            let ok = f.reg();
            f.bin(BinOp::Eq, ok, t, expect_t);
            f.assert(ok, "time");
            let id = f.reg();
            f.my_id(id);
            let expect_id = f.imm(9, Width::W16);
            let ok2 = f.reg();
            f.bin(BinOp::Eq, ok2, id, expect_id);
            f.assert(ok2, "node id");
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let (solver, mut symbols) = ctx_parts();
        let mut ctx = VmCtx::new(&solver, &mut symbols);
        ctx.now = 12345;
        ctx.node_id = 9;
        let state = VmState::fresh(&p);
        let out = run_to_completion(&p, state.prepared(&p, "main", &[]).unwrap(), &mut ctx);
        assert!(out.bugged.is_empty());
    }

    #[test]
    fn halt_stops_the_node() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            f.halt();
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished.len(), 1);
        assert_eq!(*out.finished[0].0.status(), Status::Halted);
        // A halted state cannot be prepared again.
        assert!(out.finished[0].0.prepared(&p, "main", &[]).is_none());
    }

    #[test]
    fn state_persists_across_handlers() {
        let mut pb = ProgramBuilder::new();
        pb.function("first", 0, |f| {
            let addr = f.imm(0, Width::W32);
            let v = f.imm(99, Width::W8);
            f.store(addr, v);
            f.ret(None);
        });
        pb.function("second", 0, |f| {
            let addr = f.imm(0, Width::W32);
            let v = f.reg();
            f.load(v, addr, Width::W8);
            let expect = f.imm(99, Width::W8);
            let ok = f.reg();
            f.bin(BinOp::Eq, ok, v, expect);
            f.assert(ok, "memory persisted");
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let (solver, mut symbols) = ctx_parts();
        let mut ctx = VmCtx::new(&solver, &mut symbols);
        let state = VmState::fresh(&p);
        let out1 = run_to_completion(&p, state.prepared(&p, "first", &[]).unwrap(), &mut ctx);
        let after_first = out1.finished.into_iter().next().unwrap().0;
        let out2 = run_to_completion(
            &p,
            after_first.prepared(&p, "second", &[]).unwrap(),
            &mut ctx,
        );
        assert!(out2.bugged.is_empty());
    }

    #[test]
    fn handler_args_arrive_in_registers() {
        let mut pb = ProgramBuilder::new();
        pb.function("on_recv", 2, |f| {
            let ok = f.reg();
            f.bin(BinOp::Eq, ok, f.param(0), f.param(1));
            f.assert(ok, "args equal");
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let (solver, mut symbols) = ctx_parts();
        let mut ctx = VmCtx::new(&solver, &mut symbols);
        let state = VmState::fresh(&p);
        let args = [Expr::const_(4, Width::W8), Expr::const_(4, Width::W8)];
        let out = run_to_completion(&p, state.prepared(&p, "on_recv", &args).unwrap(), &mut ctx);
        assert!(out.bugged.is_empty());
        // Arity mismatch is rejected.
        assert!(state.prepared(&p, "on_recv", &[]).is_none());
    }

    #[test]
    fn instret_counts_instructions() {
        let mut pb = ProgramBuilder::new();
        pb.function("main", 0, |f| {
            f.nop();
            f.nop();
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let out = run(&p, "main");
        assert_eq!(out.finished[0].0.instructions_executed(), 3);
    }
}
