//! Program disassembly for debugging and golden tests.

use crate::isa::Inst;
use crate::program::Program;
use std::fmt::Write as _;

impl Program {
    /// Renders the whole program as human-readable assembly, one
    /// instruction per line, with `fn` headers and jump targets as
    /// absolute indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use sde_vm::ProgramBuilder;
    /// use sde_symbolic::Width;
    ///
    /// let mut pb = ProgramBuilder::new();
    /// pb.function("main", 0, |f| {
    ///     let r = f.imm(7, Width::W8);
    ///     f.ret(Some(r));
    /// });
    /// let p = pb.build().unwrap();
    /// let asm = p.disassemble();
    /// assert!(asm.contains("fn main"));
    /// assert!(asm.contains("const r0, 7:i8"));
    /// ```
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (id, func) in self.iter() {
            let _ = writeln!(
                out,
                "fn {} ({} params, {} regs)    ; {}",
                func.name(),
                func.param_count(),
                func.reg_count(),
                id
            );
            for index in 0..func.len() as u32 {
                let inst = func.inst(index).expect("in range");
                let _ = writeln!(out, "  {index:>4}: {}", render(self, inst));
            }
        }
        out
    }
}

fn render(program: &Program, inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value, width } => format!("const {dst}, {value}:{width}"),
        Inst::Mov { dst, src } => format!("mov {dst}, {src}"),
        Inst::Bin { op, dst, lhs, rhs } => {
            format!("{} {dst}, {lhs}, {rhs}", format!("{op:?}").to_lowercase())
        }
        Inst::Un { op, dst, src } => {
            format!("{} {dst}, {src}", format!("{op:?}").to_lowercase())
        }
        Inst::Cast { op, to, dst, src } => {
            format!("{} {dst}, {src}, {to}", format!("{op:?}").to_lowercase())
        }
        Inst::Select {
            dst,
            cond,
            then,
            els,
        } => {
            format!("select {dst}, {cond} ? {then} : {els}")
        }
        Inst::Load { dst, addr, width } => format!("load.{width} {dst}, [{addr}]"),
        Inst::Store { addr, src } => format!("store [{addr}], {src}"),
        Inst::Jmp { target } => format!("jmp {target}"),
        Inst::Br {
            cond,
            then_target,
            else_target,
        } => {
            format!("br {cond}, {then_target}, {else_target}")
        }
        Inst::Call { func, args, dst } => {
            let args: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            let dst = dst.map(|d| format!("{d} = ")).unwrap_or_default();
            format!(
                "{dst}call {}({})",
                program.function(*func).name(),
                args.join(", ")
            )
        }
        Inst::Ret { val } => match val {
            Some(r) => format!("ret {r}"),
            None => "ret".to_string(),
        },
        Inst::MakeSymbolic { dst, name, width } => {
            format!("make_symbolic {dst}, \"{name}\":{width}")
        }
        Inst::Send { dest, payload } => {
            let p: Vec<String> = payload.iter().map(|r| r.to_string()).collect();
            format!("send {dest}, [{}]", p.join(", "))
        }
        Inst::SetTimer { delay, timer } => format!("set_timer {delay}, #{timer}"),
        Inst::Now { dst } => format!("now {dst}"),
        Inst::MyId { dst } => format!("my_id {dst}"),
        Inst::Assert { cond, msg } => format!("assert {cond}, \"{msg}\""),
        Inst::Assume { cond } => format!("assume {cond}"),
        Inst::Fail { msg } => format!("fail \"{msg}\""),
        Inst::Halt => "halt".to_string(),
        Inst::Nop => "nop".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::program::ProgramBuilder;
    use sde_symbolic::{BinOp, Width};

    #[test]
    fn disassembly_covers_control_flow_and_calls() {
        let mut pb = ProgramBuilder::new();
        pb.function("helper", 1, |f| {
            f.ret(Some(f.param(0)));
        });
        pb.function("main", 0, |f| {
            let x = f.reg();
            f.make_symbolic(x, "x", Width::W8);
            let y = f.reg();
            f.call("helper", &[x], Some(y));
            let ten = f.imm(10, Width::W8);
            let c = f.reg();
            f.bin(BinOp::Ult, c, y, ten);
            let (a, b) = (f.label(), f.label());
            f.br(c, a, b);
            f.place(a);
            f.halt();
            f.place(b);
            f.fail("too big");
        });
        let p = pb.build().unwrap();
        let asm = p.disassemble();
        assert!(asm.contains("fn helper (1 params, 1 regs)"));
        assert!(asm.contains("make_symbolic r0, \"x\":i8"));
        assert!(asm.contains("r1 = call helper(r0)"));
        assert!(asm.contains("ult r3, r1, r2"));
        assert!(asm.contains("br r3, "));
        assert!(asm.contains("halt"));
        assert!(asm.contains("fail \"too big\""));
    }

    #[test]
    fn disassembly_is_stable() {
        // Two builds of the same source disassemble identically — usable
        // as a golden-file key.
        let build = || {
            let mut pb = ProgramBuilder::new();
            pb.function("main", 0, |f| {
                let a = f.imm(1, Width::W16);
                let b = f.imm(2, Width::W16);
                let c = f.reg();
                f.bin(BinOp::Add, c, a, b);
                f.store(a, c);
                f.ret(None);
            });
            pb.build().unwrap().disassemble()
        };
        assert_eq!(build(), build());
    }
}
