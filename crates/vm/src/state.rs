//! Execution states.

use crate::bug::BugReport;
use crate::isa::{FuncId, Loc, Reg};
use crate::program::Program;
use sde_pds::{PList, PMap};
use sde_symbolic::{Expr, ExprRef, PathCondition};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Default size of a node's byte-addressed global memory.
pub(crate) const DEFAULT_MEMORY_SIZE: u32 = 64 * 1024;

/// Lifecycle of an execution state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Between handler invocations; ready for the next event.
    Idle,
    /// Currently executing a handler.
    Running,
    /// The program executed `Halt`; no further handlers run.
    Halted,
    /// The path condition became unsatisfiable (failed `Assume`).
    Infeasible,
    /// A bug was detected on this path.
    Bugged(BugReport),
}

impl Status {
    /// Returns `true` when the state can still make progress.
    pub fn is_live(&self) -> bool {
        matches!(self, Status::Idle | Status::Running)
    }
}

/// One call frame.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub func: FuncId,
    pub pc: u32,
    pub regs: Vec<Option<ExprRef>>,
    /// Register in the *caller's* frame receiving our return value.
    pub ret_dst: Option<Reg>,
}

/// One symbolic execution state of a single node program.
///
/// Cloning is cheap: global memory is a persistent map, the path condition
/// a persistent list, and register values are shared `Arc` terms. This is
/// the property the whole SDE construction leans on — COB forks `k − 1`
/// states per local branch and still has to be affordable enough to serve
/// as the correctness baseline.
#[derive(Debug, Clone)]
pub struct VmState {
    pub(crate) frames: Vec<Frame>,
    pub(crate) heap: PMap<u32, ExprRef>,
    pub(crate) memory_size: u32,
    pub(crate) path: PathCondition,
    pub(crate) status: Status,
    pub(crate) branch_trace: PList<(Loc, bool)>,
    pub(crate) path_digest: u64,
    pub(crate) instret: u64,
    /// Per-lineage count of symbolic inputs minted per name — the
    /// occurrence half of the run-independent replay key.
    pub(crate) input_counts: PMap<String, u32>,
}

impl VmState {
    /// A pristine state for `program`: empty memory, true path condition,
    /// no handler scheduled. (The program handle is only used for
    /// validation today; states are program-agnostic containers.)
    pub fn fresh(_program: &Program) -> VmState {
        VmState {
            frames: Vec::new(),
            heap: PMap::new(),
            memory_size: DEFAULT_MEMORY_SIZE,
            path: PathCondition::new(),
            status: Status::Idle,
            branch_trace: PList::new(),
            path_digest: 0xcbf2_9ce4_8422_2325, // FNV offset basis
            instret: 0,
            input_counts: PMap::new(),
        }
    }

    /// Like [`VmState::fresh`] with an explicit memory size in bytes.
    pub fn fresh_with_memory(program: &Program, memory_size: u32) -> VmState {
        VmState {
            memory_size,
            ..VmState::fresh(program)
        }
    }

    /// Returns a copy of this state set up to run the named handler with
    /// the given arguments.
    ///
    /// Memory, path condition and branch trace persist; the call stack is
    /// replaced by a single frame for the handler.
    ///
    /// Returns `None` when the handler does not exist in `program`, when
    /// the argument count does not match the handler's parameter count, or
    /// when the state is not [`Status::Idle`].
    pub fn prepared(&self, program: &Program, handler: &str, args: &[ExprRef]) -> Option<VmState> {
        if self.status != Status::Idle {
            return None;
        }
        let func_id = program.function_id(handler)?;
        let func = program.function(func_id);
        if usize::from(func.param_count()) != args.len() {
            return None;
        }
        let mut regs: Vec<Option<ExprRef>> = vec![None; usize::from(func.reg_count())];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(a.clone());
        }
        let mut next = self.clone();
        next.frames = vec![Frame {
            func: func_id,
            pc: 0,
            regs,
            ret_dst: None,
        }];
        next.status = Status::Running;
        Some(next)
    }

    /// The current lifecycle status.
    pub fn status(&self) -> &Status {
        &self.status
    }

    /// Bumps and returns this lineage's occurrence counter for inputs
    /// named `name` — the occurrence half of a fresh input's replay key.
    /// Used by the interpreter (`MakeSymbolic`) and by environment-level
    /// failure models minting inputs on a state's behalf.
    pub fn next_input_occurrence(&mut self, name: &str) -> u32 {
        let n = self
            .input_counts
            .get(&name.to_string())
            .copied()
            .unwrap_or(0);
        self.input_counts = self.input_counts.insert(name.to_string(), n + 1);
        n
    }

    /// Adds a constraint to the path condition (used by environment-level
    /// failure models, which fork states outside of program branches).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) unless `cond` has width 1.
    pub fn constrain(&mut self, cond: ExprRef) {
        self.path = self.path.with(cond);
    }

    /// Returns this state as it looks immediately after a node reboot:
    /// volatile memory cleared, call stack empty, ready for `on_boot`.
    /// Path condition, branch trace and instruction count persist — the
    /// constraints on symbolic inputs remain valid across the reboot.
    #[must_use]
    pub fn rebooted(&self) -> VmState {
        VmState {
            frames: Vec::new(),
            heap: sde_pds::PMap::new(),
            status: Status::Idle,
            ..self.clone()
        }
    }

    /// The path condition accumulated so far.
    pub fn path_condition(&self) -> &PathCondition {
        &self.path
    }

    /// Number of instructions this state has executed (`#(s)` in the
    /// paper's complexity analysis).
    pub fn instructions_executed(&self) -> u64 {
        self.instret
    }

    /// A digest of all branch decisions taken, identifying the explored
    /// path. Two states with equal digests took the same branches.
    pub fn path_digest(&self) -> u64 {
        self.path_digest
    }

    /// The branch decisions taken, most recent first.
    pub fn branch_trace(&self) -> impl Iterator<Item = &(Loc, bool)> {
        self.branch_trace.iter()
    }

    /// Reads a byte of global memory (unwritten bytes read as zero).
    pub fn memory_byte(&self, addr: u32) -> ExprRef {
        self.heap
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| Expr::const_(0, sde_symbolic::Width::W8))
    }

    /// Number of explicitly written memory bytes.
    pub fn memory_footprint(&self) -> usize {
        self.heap.len()
    }

    /// Deterministic approximation of this state's memory usage in bytes,
    /// used for the paper's RAM-over-time curves (substituting for RSS
    /// measurements; see DESIGN.md).
    pub fn approx_bytes(&self) -> usize {
        const BASE: usize = 256; // struct + bookkeeping overhead
        const PER_HEAP_CELL: usize = 48; // map node amortized + Arc term
        const PER_PC_NODE: usize = 40; // expression node
        const PER_FRAME: usize = 64;
        const PER_REG: usize = 16;
        let frame_bytes: usize = self
            .frames
            .iter()
            .map(|f| PER_FRAME + f.regs.len() * PER_REG)
            .sum();
        BASE + self.heap.len() * PER_HEAP_CELL
            + self.path.node_count() * PER_PC_NODE
            + frame_bytes
            + self.branch_trace.len() * 24
    }

    /// An order-insensitive digest of the state's *configuration*: memory
    /// contents, call frames, status, and path constraints. Two states
    /// with equal configuration digests are duplicates in the paper's
    /// sense (§III-D) — modulo hashing, which the tests cross-check with
    /// [`VmState::config_eq`].
    pub fn config_digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        // Heap: multiset sum of per-entry hashes (iteration order is
        // unspecified, so the combine must be commutative — but unlike
        // XOR, addition keeps repeated or pairwise-equal entries from
        // cancelling to zero).
        let mut heap_acc: u64 = 0;
        for (k, v) in self.heap.iter() {
            let mut eh = DefaultHasher::new();
            k.hash(&mut eh);
            v.hash(&mut eh);
            heap_acc = heap_acc.wrapping_add(mix64(eh.finish()));
        }
        heap_acc.hash(&mut h);
        // Path constraints: the same order-insensitive multiset combine.
        let mut pc_acc: u64 = 0;
        for c in self.path.iter() {
            let mut ch = DefaultHasher::new();
            c.hash(&mut ch);
            pc_acc = pc_acc.wrapping_add(mix64(ch.finish()));
        }
        pc_acc.hash(&mut h);
        // Frames: ordered.
        for f in &self.frames {
            f.func.hash(&mut h);
            f.pc.hash(&mut h);
            f.ret_dst.hash(&mut h);
            for r in &f.regs {
                r.hash(&mut h);
            }
        }
        std::mem::discriminant(&self.status).hash(&mut h);
        self.path_digest.hash(&mut h);
        h.finish()
    }

    /// Exact configuration equality (the ground truth behind
    /// [`VmState::config_digest`]). Quadratic in memory size; intended for
    /// tests and assertions.
    pub fn config_eq(&self, other: &VmState) -> bool {
        if self.status != other.status
            || self.path_digest != other.path_digest
            || self.frames.len() != other.frames.len()
            || self.heap.len() != other.heap.len()
        {
            return false;
        }
        for (a, b) in self.frames.iter().zip(&other.frames) {
            if a.func != b.func || a.pc != b.pc || a.ret_dst != b.ret_dst || a.regs != b.regs {
                return false;
            }
        }
        for (k, v) in self.heap.iter() {
            if other.heap.get(k) != Some(v) {
                return false;
            }
        }
        // Path conditions as constraint sets.
        let mut mine: Vec<String> = self.path.iter().map(|c| c.to_string()).collect();
        let mut theirs: Vec<String> = other.path.iter().map(|c| c.to_string()).collect();
        mine.sort();
        theirs.sort();
        mine == theirs
    }
}

/// Finalizing mixer (splitmix64 tail) applied to each entry hash before
/// the commutative fold in [`VmState::config_digest`], so that structured
/// near-collisions in `DefaultHasher` outputs don't survive the sum.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use sde_symbolic::Width;

    fn empty_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.function("noop", 0, |f| f.ret(None));
        pb.build().unwrap()
    }

    #[test]
    fn fresh_state_is_idle_and_empty() {
        let p = empty_program();
        let s = VmState::fresh(&p);
        assert_eq!(*s.status(), Status::Idle);
        assert_eq!(s.memory_footprint(), 0);
        assert_eq!(s.instructions_executed(), 0);
        assert!(s.path_condition().is_empty());
        assert_eq!(s.memory_byte(100).as_const(), Some(0));
    }

    #[test]
    fn config_digest_stable_under_clone() {
        let p = empty_program();
        let s = VmState::fresh(&p);
        let t = s.clone();
        assert_eq!(s.config_digest(), t.config_digest());
        assert!(s.config_eq(&t));
    }

    #[test]
    fn approx_bytes_grows_with_memory() {
        let p = empty_program();
        let mut s = VmState::fresh(&p);
        let before = s.approx_bytes();
        s.heap = s.heap.insert(0, Expr::const_(1, Width::W8));
        s.heap = s.heap.insert(1, Expr::const_(2, Width::W8));
        assert!(s.approx_bytes() > before);
    }
}
