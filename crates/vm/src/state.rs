//! Execution states.

use crate::bug::BugReport;
use crate::isa::{FuncId, Loc, Reg};
use crate::program::Program;
use sde_pds::{PList, PMap};
use sde_symbolic::{CodecError, Expr, ExprRef, PathCondition, SnapReader, SnapWriter};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Default size of a node's byte-addressed global memory.
pub(crate) const DEFAULT_MEMORY_SIZE: u32 = 64 * 1024;

/// Lifecycle of an execution state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Between handler invocations; ready for the next event.
    Idle,
    /// Currently executing a handler.
    Running,
    /// The program executed `Halt`; no further handlers run.
    Halted,
    /// The path condition became unsatisfiable (failed `Assume`).
    Infeasible,
    /// A bug was detected on this path.
    Bugged(BugReport),
}

impl Status {
    /// Returns `true` when the state can still make progress.
    pub fn is_live(&self) -> bool {
        matches!(self, Status::Idle | Status::Running)
    }
}

/// One call frame.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub func: FuncId,
    pub pc: u32,
    pub regs: Vec<Option<ExprRef>>,
    /// Register in the *caller's* frame receiving our return value.
    pub ret_dst: Option<Reg>,
}

/// One symbolic execution state of a single node program.
///
/// Cloning is cheap: global memory is a persistent map, the path condition
/// a persistent list, and register values are shared `Arc` terms. This is
/// the property the whole SDE construction leans on — COB forks `k − 1`
/// states per local branch and still has to be affordable enough to serve
/// as the correctness baseline.
#[derive(Debug, Clone)]
pub struct VmState {
    pub(crate) frames: Vec<Frame>,
    pub(crate) heap: PMap<u32, ExprRef>,
    pub(crate) memory_size: u32,
    pub(crate) path: PathCondition,
    pub(crate) status: Status,
    pub(crate) branch_trace: PList<(Loc, bool)>,
    pub(crate) path_digest: u64,
    pub(crate) instret: u64,
    /// Per-lineage count of symbolic inputs minted per name — the
    /// occurrence half of the run-independent replay key.
    pub(crate) input_counts: PMap<String, u32>,
    /// Commutative multiset sum of per-entry hashes of `heap`, maintained
    /// on every store so [`VmState::config_digest`] never rescans memory.
    pub(crate) heap_acc: u64,
    /// Commutative multiset sum of per-constraint hashes of `path`,
    /// maintained on every added constraint (same scheme as `heap_acc`).
    pub(crate) path_acc: u64,
}

impl VmState {
    /// A pristine state for `program`: empty memory, true path condition,
    /// no handler scheduled. (The program handle is only used for
    /// validation today; states are program-agnostic containers.)
    pub fn fresh(_program: &Program) -> VmState {
        VmState {
            frames: Vec::new(),
            heap: PMap::new(),
            memory_size: DEFAULT_MEMORY_SIZE,
            path: PathCondition::new(),
            status: Status::Idle,
            branch_trace: PList::new(),
            path_digest: 0xcbf2_9ce4_8422_2325, // FNV offset basis
            instret: 0,
            input_counts: PMap::new(),
            heap_acc: 0,
            path_acc: 0,
        }
    }

    /// Like [`VmState::fresh`] with an explicit memory size in bytes.
    pub fn fresh_with_memory(program: &Program, memory_size: u32) -> VmState {
        VmState {
            memory_size,
            ..VmState::fresh(program)
        }
    }

    /// Returns a copy of this state set up to run the named handler with
    /// the given arguments.
    ///
    /// Memory, path condition and branch trace persist; the call stack is
    /// replaced by a single frame for the handler.
    ///
    /// Returns `None` when the handler does not exist in `program`, when
    /// the argument count does not match the handler's parameter count, or
    /// when the state is not [`Status::Idle`].
    pub fn prepared(&self, program: &Program, handler: &str, args: &[ExprRef]) -> Option<VmState> {
        if self.status != Status::Idle {
            return None;
        }
        let func_id = program.function_id(handler)?;
        let func = program.function(func_id);
        if usize::from(func.param_count()) != args.len() {
            return None;
        }
        let mut regs: Vec<Option<ExprRef>> = vec![None; usize::from(func.reg_count())];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(a.clone());
        }
        let mut next = self.clone();
        next.frames = vec![Frame {
            func: func_id,
            pc: 0,
            regs,
            ret_dst: None,
        }];
        next.status = Status::Running;
        Some(next)
    }

    /// The current lifecycle status.
    pub fn status(&self) -> &Status {
        &self.status
    }

    /// Bumps and returns this lineage's occurrence counter for inputs
    /// named `name` — the occurrence half of a fresh input's replay key.
    /// Used by the interpreter (`MakeSymbolic`) and by environment-level
    /// failure models minting inputs on a state's behalf.
    pub fn next_input_occurrence(&mut self, name: &str) -> u32 {
        let n = self
            .input_counts
            .get(&name.to_string())
            .copied()
            .unwrap_or(0);
        self.input_counts = self.input_counts.insert(name.to_string(), n + 1);
        n
    }

    /// Adds a constraint to the path condition (used by environment-level
    /// failure models, which fork states outside of program branches).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) unless `cond` has width 1.
    pub fn constrain(&mut self, cond: ExprRef) {
        self.path_push(cond);
    }

    /// Stores one byte of global memory through the digest accumulator:
    /// the per-entry hash of a replaced cell is subtracted and the new
    /// cell's added, so `heap_acc` always equals the full multiset sum
    /// without a rescan. Every heap write must go through here.
    pub(crate) fn heap_store(&mut self, addr: u32, value: ExprRef) {
        if let Some(old) = self.heap.get(&addr) {
            self.heap_acc = self.heap_acc.wrapping_sub(heap_entry_hash(addr, old));
        }
        self.heap_acc = self.heap_acc.wrapping_add(heap_entry_hash(addr, &value));
        self.heap = self.heap.insert(addr, value);
    }

    /// Extends the path condition through the digest accumulator. The
    /// constraint is simplified by [`PathCondition::with`] and may not be
    /// stored at all (`true`) or only flip the trivially-false marker
    /// (`false`); the accumulator folds exactly what was stored. Every
    /// path extension must go through here.
    pub(crate) fn path_push(&mut self, cond: ExprRef) {
        let next = self.path.with(cond);
        if next.len() > self.path.len() {
            let stored = next.iter().next().expect("constraint just added");
            self.path_acc = self.path_acc.wrapping_add(constraint_hash(stored));
        }
        self.path = next;
    }

    /// Marks the state bugged from outside the interpreter — the engine's
    /// failure-model decisions (drop/dup/reboot) resolve replay inputs
    /// themselves, and a strict-preset miss there is reported exactly
    /// like an interpreter-detected bug.
    pub fn set_bugged(&mut self, report: crate::BugReport) {
        self.status = Status::Bugged(report);
    }

    /// Returns this state as it looks immediately after a node reboot:
    /// volatile memory cleared, call stack empty, ready for `on_boot`.
    /// Path condition, branch trace and instruction count persist — the
    /// constraints on symbolic inputs remain valid across the reboot.
    #[must_use]
    pub fn rebooted(&self) -> VmState {
        VmState {
            frames: Vec::new(),
            heap: sde_pds::PMap::new(),
            heap_acc: 0,
            status: Status::Idle,
            ..self.clone()
        }
    }

    /// Returns this state as it looks after a *crash with recovery*: like
    /// [`VmState::rebooted`], except heap cells inside the persistence
    /// window `[persist_base, persist_base + persist_size)` survive —
    /// they model a small non-volatile store (flash/EEPROM) that a real
    /// node would reload on boot. The incremental heap accumulator is
    /// rebuilt from the surviving cells so duplicate detection stays
    /// exact across the crash.
    #[must_use]
    pub fn crash_rebooted(&self, persist_base: u32, persist_size: u32) -> VmState {
        let end = persist_base.saturating_add(persist_size);
        let mut heap = sde_pds::PMap::new();
        let mut heap_acc: u64 = 0;
        for (addr, value) in self.heap.iter() {
            if *addr >= persist_base && *addr < end {
                heap_acc = heap_acc.wrapping_add(heap_entry_hash(*addr, value));
                heap = heap.insert(*addr, value.clone());
            }
        }
        VmState {
            frames: Vec::new(),
            heap,
            heap_acc,
            status: Status::Idle,
            ..self.clone()
        }
    }

    /// The path condition accumulated so far.
    pub fn path_condition(&self) -> &PathCondition {
        &self.path
    }

    /// Number of instructions this state has executed (`#(s)` in the
    /// paper's complexity analysis).
    pub fn instructions_executed(&self) -> u64 {
        self.instret
    }

    /// A digest of all branch decisions taken, identifying the explored
    /// path. Two states with equal digests took the same branches.
    pub fn path_digest(&self) -> u64 {
        self.path_digest
    }

    /// The branch decisions taken, most recent first.
    pub fn branch_trace(&self) -> impl Iterator<Item = &(Loc, bool)> {
        self.branch_trace.iter()
    }

    /// Reads a byte of global memory (unwritten bytes read as zero).
    pub fn memory_byte(&self, addr: u32) -> ExprRef {
        self.heap
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| Expr::const_(0, sde_symbolic::Width::W8))
    }

    /// Number of explicitly written memory bytes.
    pub fn memory_footprint(&self) -> usize {
        self.heap.len()
    }

    /// Deterministic approximation of this state's memory usage in bytes,
    /// used for the paper's RAM-over-time curves (substituting for RSS
    /// measurements; see DESIGN.md).
    pub fn approx_bytes(&self) -> usize {
        const BASE: usize = 256; // struct + bookkeeping overhead
        const PER_HEAP_CELL: usize = 48; // map node amortized + Arc term
        const PER_PC_NODE: usize = 40; // expression node
        const PER_FRAME: usize = 64;
        const PER_REG: usize = 16;
        let frame_bytes: usize = self
            .frames
            .iter()
            .map(|f| PER_FRAME + f.regs.len() * PER_REG)
            .sum();
        BASE + self.heap.len() * PER_HEAP_CELL
            + self.path.node_count() * PER_PC_NODE
            + frame_bytes
            + self.branch_trace.len() * 24
    }

    /// An order-insensitive digest of the state's *configuration*: memory
    /// contents, call frames, status, and path constraints. Two states
    /// with equal configuration digests are duplicates in the paper's
    /// sense (§III-D) — modulo hashing, which the tests cross-check with
    /// [`VmState::config_eq`].
    ///
    /// The heap and path-condition components are read from accumulators
    /// maintained incrementally at every mutation
    /// ([`VmState::heap_store`] / [`VmState::path_push`]), so this is
    /// O(frames) — and frames are empty between handlers, where the
    /// engine's duplicate detection runs. The from-scratch rescan lives
    /// in [`VmState::config_digest_reference`]; the two agree on every
    /// state by construction (property-tested).
    pub fn config_digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.heap_acc.hash(&mut h);
        self.path_acc.hash(&mut h);
        // Frames: ordered.
        for f in &self.frames {
            f.func.hash(&mut h);
            f.pc.hash(&mut h);
            f.ret_dst.hash(&mut h);
            for r in &f.regs {
                r.hash(&mut h);
            }
        }
        std::mem::discriminant(&self.status).hash(&mut h);
        self.path_digest.hash(&mut h);
        h.finish()
    }

    /// [`VmState::config_digest`] recomputed by rescanning the full heap
    /// and path condition instead of reading the incremental accumulators.
    /// Kept as the ground truth for digest-coherence tests and as the
    /// baseline of the `digest/` criterion benchmark.
    pub fn config_digest_reference(&self) -> u64 {
        let mut h = DefaultHasher::new();
        // Heap: multiset sum of per-entry hashes (iteration order is
        // unspecified, so the combine must be commutative — but unlike
        // XOR, addition keeps repeated or pairwise-equal entries from
        // cancelling to zero).
        let mut heap_acc: u64 = 0;
        for (k, v) in self.heap.iter() {
            heap_acc = heap_acc.wrapping_add(heap_entry_hash(*k, v));
        }
        heap_acc.hash(&mut h);
        // Path constraints: the same order-insensitive multiset combine.
        let mut pc_acc: u64 = 0;
        for c in self.path.iter() {
            pc_acc = pc_acc.wrapping_add(constraint_hash(c));
        }
        pc_acc.hash(&mut h);
        // Frames: ordered.
        for f in &self.frames {
            f.func.hash(&mut h);
            f.pc.hash(&mut h);
            f.ret_dst.hash(&mut h);
            for r in &f.regs {
                r.hash(&mut h);
            }
        }
        std::mem::discriminant(&self.status).hash(&mut h);
        self.path_digest.hash(&mut h);
        h.finish()
    }

    /// Exact configuration equality (the ground truth behind
    /// [`VmState::config_digest`]). Quadratic in memory size; intended for
    /// tests and assertions.
    pub fn config_eq(&self, other: &VmState) -> bool {
        if self.status != other.status
            || self.path_digest != other.path_digest
            || self.frames.len() != other.frames.len()
            || self.heap.len() != other.heap.len()
        {
            return false;
        }
        for (a, b) in self.frames.iter().zip(&other.frames) {
            if a.func != b.func || a.pc != b.pc || a.ret_dst != b.ret_dst || a.regs != b.regs {
                return false;
            }
        }
        for (k, v) in self.heap.iter() {
            if other.heap.get(k) != Some(v) {
                return false;
            }
        }
        // Path conditions as constraint sets.
        let mut mine: Vec<String> = self.path.iter().map(|c| c.to_string()).collect();
        let mut theirs: Vec<String> = other.path.iter().map(|c| c.to_string()).collect();
        mine.sort();
        theirs.sort();
        mine == theirs
    }

    /// [`VmState::config_eq`] strengthened with every field a *future*
    /// execution can observe: branch trace, replay-key occurrence
    /// counters and memory size. This is the confirmation the engine's
    /// duplicate-dispatch index runs after a digest hit — a hash
    /// collision must never let two states that could diverge later be
    /// treated as congruent.
    pub fn dedup_eq(&self, other: &VmState) -> bool {
        if !self.config_eq(other) || self.memory_size != other.memory_size {
            return false;
        }
        if self.branch_trace.len() != other.branch_trace.len()
            || !self.branch_trace.iter().eq(other.branch_trace.iter())
        {
            return false;
        }
        let mut mine: Vec<(&String, u32)> =
            self.input_counts.iter().map(|(k, v)| (k, *v)).collect();
        let mut theirs: Vec<(&String, u32)> =
            other.input_counts.iter().map(|(k, v)| (k, *v)).collect();
        mine.sort();
        theirs.sort();
        mine == theirs
    }

    /// Serializes this state's complete configuration into `w` (snapshot
    /// encode). [`VmState::read_snapshot`] is the exact inverse: a decoded
    /// state is `config_eq` to the original and re-encodes to the same
    /// bytes.
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        w.varint(self.frames.len() as u64);
        for f in &self.frames {
            w.varint(u64::from(f.func.0));
            w.varint(u64::from(f.pc));
            w.varint(f.regs.len() as u64);
            for r in &f.regs {
                match r {
                    Some(e) => {
                        w.bool(true);
                        w.expr(e);
                    }
                    None => w.bool(false),
                }
            }
            match f.ret_dst {
                Some(Reg(r)) => {
                    w.bool(true);
                    w.varint(u64::from(r));
                }
                None => w.bool(false),
            }
        }
        // Heap entries sorted by address: the persistent map's iteration
        // order is not specified, the encoding must be deterministic.
        let mut heap: Vec<(u32, &ExprRef)> = self.heap.iter().map(|(k, v)| (*k, v)).collect();
        heap.sort_by_key(|(k, _)| *k);
        w.varint(heap.len() as u64);
        for (addr, value) in heap {
            w.varint(u64::from(addr));
            w.expr(value);
        }
        w.varint(u64::from(self.memory_size));
        // Path condition, most recent constraint first (iteration order).
        w.varint(self.path.len() as u64);
        for c in self.path.iter() {
            w.expr(c);
        }
        w.bool(self.path.is_trivially_false());
        match &self.status {
            Status::Idle => w.u8(0),
            Status::Running => w.u8(1),
            Status::Halted => w.u8(2),
            Status::Infeasible => w.u8(3),
            Status::Bugged(bug) => {
                w.u8(4);
                bug.write_snapshot(w);
            }
        }
        // Branch trace, most recent decision first (iteration order).
        w.varint(self.branch_trace.len() as u64);
        for (loc, taken) in self.branch_trace.iter() {
            w.varint(u64::from(loc.func.0));
            w.varint(u64::from(loc.index));
            w.bool(*taken);
        }
        w.varint(self.path_digest);
        w.varint(self.instret);
        let mut counts: Vec<(&String, u32)> =
            self.input_counts.iter().map(|(k, v)| (k, *v)).collect();
        counts.sort();
        w.varint(counts.len() as u64);
        for (name, n) in counts {
            w.str(name);
            w.varint(u64::from(n));
        }
    }

    /// Decodes a state written by [`VmState::write_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed input; never
    /// panics.
    pub fn read_snapshot(r: &mut SnapReader<'_>) -> Result<VmState, CodecError> {
        let nframes = checked_len(r, "frame count")?;
        let mut frames = Vec::with_capacity(nframes);
        for _ in 0..nframes {
            let func = FuncId(
                u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("function id"))?,
            );
            let pc = u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("frame pc"))?;
            let nregs = checked_len(r, "register count")?;
            let mut regs = Vec::with_capacity(nregs);
            for _ in 0..nregs {
                regs.push(if r.bool()? { Some(r.expr()?) } else { None });
            }
            let ret_dst = if r.bool()? {
                Some(Reg(u16::try_from(r.varint()?)
                    .map_err(|_| CodecError::Malformed("return register"))?))
            } else {
                None
            };
            frames.push(Frame {
                func,
                pc,
                regs,
                ret_dst,
            });
        }
        let nheap = checked_len(r, "heap entry count")?;
        let mut heap = PMap::new();
        for _ in 0..nheap {
            let addr =
                u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("heap address"))?;
            heap = heap.insert(addr, r.expr()?);
        }
        let memory_size =
            u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("memory size"))?;
        let npc = checked_len(r, "constraint count")?;
        let mut constraints = Vec::with_capacity(npc);
        for _ in 0..npc {
            constraints.push(r.expr()?);
        }
        let trivially_false = r.bool()?;
        let path = PathCondition::from_parts(constraints, trivially_false);
        let status = match r.u8()? {
            0 => Status::Idle,
            1 => Status::Running,
            2 => Status::Halted,
            3 => Status::Infeasible,
            4 => Status::Bugged(BugReport::read_snapshot(r)?),
            _ => return Err(CodecError::Malformed("status tag")),
        };
        let nbranches = checked_len(r, "branch trace count")?;
        let mut branches = Vec::with_capacity(nbranches);
        for _ in 0..nbranches {
            let func = FuncId(
                u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("branch function"))?,
            );
            let index =
                u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("branch index"))?;
            branches.push((Loc { func, index }, r.bool()?));
        }
        // `iter` yields most recent first; rebuild by prepending oldest up.
        let mut branch_trace = PList::new();
        for entry in branches.into_iter().rev() {
            branch_trace = branch_trace.prepend(entry);
        }
        let path_digest = r.varint()?;
        let instret = r.varint()?;
        let ncounts = checked_len(r, "input count entries")?;
        let mut input_counts = PMap::new();
        for _ in 0..ncounts {
            let name = r.str()?;
            let n = u32::try_from(r.varint()?)
                .map_err(|_| CodecError::Malformed("input occurrence count"))?;
            input_counts = input_counts.insert(name, n);
        }
        // The digest accumulators are derived data: recompute them once at
        // decode time (the snapshot format stays unchanged).
        let mut heap_acc: u64 = 0;
        for (k, v) in heap.iter() {
            heap_acc = heap_acc.wrapping_add(heap_entry_hash(*k, v));
        }
        let mut path_acc: u64 = 0;
        for c in path.iter() {
            path_acc = path_acc.wrapping_add(constraint_hash(c));
        }
        Ok(VmState {
            frames,
            heap,
            memory_size,
            path,
            status,
            branch_trace,
            path_digest,
            instret,
            input_counts,
            heap_acc,
            path_acc,
        })
    }
}

/// Hash of one heap cell for the commutative multiset fold.
fn heap_entry_hash(addr: u32, value: &ExprRef) -> u64 {
    let mut eh = DefaultHasher::new();
    addr.hash(&mut eh);
    value.hash(&mut eh);
    mix64(eh.finish())
}

/// Hash of one stored path constraint for the commutative multiset fold.
fn constraint_hash(c: &ExprRef) -> u64 {
    let mut ch = DefaultHasher::new();
    c.hash(&mut ch);
    mix64(ch.finish())
}

/// Reads a length prefix that cannot plausibly exceed the remaining
/// input (every element costs at least one byte), rejecting absurd
/// counts before any allocation.
fn checked_len(r: &mut SnapReader<'_>, what: &'static str) -> Result<usize, CodecError> {
    let n = r.varint()?;
    if n > r.remaining() as u64 {
        return Err(CodecError::Malformed(what));
    }
    Ok(n as usize)
}

/// Finalizing mixer (splitmix64 tail) applied to each entry hash before
/// the commutative fold in [`VmState::config_digest`], so that structured
/// near-collisions in `DefaultHasher` outputs don't survive the sum.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bug::BugKind;
    use crate::program::ProgramBuilder;
    use sde_symbolic::Width;
    use std::sync::Arc;

    fn empty_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.function("noop", 0, |f| f.ret(None));
        pb.build().unwrap()
    }

    #[test]
    fn fresh_state_is_idle_and_empty() {
        let p = empty_program();
        let s = VmState::fresh(&p);
        assert_eq!(*s.status(), Status::Idle);
        assert_eq!(s.memory_footprint(), 0);
        assert_eq!(s.instructions_executed(), 0);
        assert!(s.path_condition().is_empty());
        assert_eq!(s.memory_byte(100).as_const(), Some(0));
    }

    #[test]
    fn config_digest_stable_under_clone() {
        let p = empty_program();
        let s = VmState::fresh(&p);
        let t = s.clone();
        assert_eq!(s.config_digest(), t.config_digest());
        assert!(s.config_eq(&t));
    }

    #[test]
    fn snapshot_roundtrip_preserves_configuration() {
        let p = empty_program();
        let mut s = VmState::fresh(&p);
        let mut t = sde_symbolic::SymbolTable::new();
        let xv = t.fresh_keyed("x", Width::W8, 2, 0);
        let x = Expr::sym(xv.clone());
        s.heap_store(7, x.clone());
        s.heap_store(3, Expr::const_(9, Width::W8));
        s.constrain(Expr::ult(x.clone(), Expr::const_(5, Width::W8)));
        s.constrain(Expr::ne(x.clone(), Expr::const_(0, Width::W8)));
        s.branch_trace = s.branch_trace.prepend((
            Loc {
                func: FuncId(0),
                index: 2,
            },
            true,
        ));
        s.path_digest = 0xdead_beef;
        s.instret = 42;
        s.input_counts = s.input_counts.insert("x".to_string(), 1);
        s.frames = vec![Frame {
            func: FuncId(0),
            pc: 1,
            regs: vec![Some(x.clone()), None],
            ret_dst: Some(Reg(3)),
        }];
        s.status = Status::Bugged(BugReport {
            kind: BugKind::OutOfBounds { addr: 0x1_0000 },
            message: Arc::from("store"),
            loc: Loc {
                func: FuncId(0),
                index: 2,
            },
            model: Some([(xv.id(), 3)].into_iter().collect()),
        });

        let mut w = SnapWriter::new();
        s.write_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        let s2 = VmState::read_snapshot(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(s.config_eq(&s2));
        assert_eq!(s.config_digest(), s2.config_digest());
        assert_eq!(s2.instret, 42);
        assert_eq!(s2.path_digest, 0xdead_beef);
        assert_eq!(s2.input_counts.get(&"x".to_string()), Some(&1));
        assert_eq!(s2.branch_trace.len(), 1);
        assert_eq!(s2.memory_size, s.memory_size);

        // Re-encode is byte-identical (the fixed-point property the
        // engine-level snapshot tests rely on).
        let mut w2 = SnapWriter::new();
        s2.write_snapshot(&mut w2);
        assert_eq!(w2.finish(), bytes);

        // Truncation never panics.
        for n in 0..bytes.len() {
            if let Ok(mut r) = SnapReader::new(&bytes[..n]) {
                let _ = VmState::read_snapshot(&mut r);
            }
        }
    }

    #[test]
    fn approx_bytes_grows_with_memory() {
        let p = empty_program();
        let mut s = VmState::fresh(&p);
        let before = s.approx_bytes();
        s.heap_store(0, Expr::const_(1, Width::W8));
        s.heap_store(1, Expr::const_(2, Width::W8));
        assert!(s.approx_bytes() > before);
    }

    #[test]
    fn incremental_digest_matches_reference() {
        let p = empty_program();
        let mut s = VmState::fresh(&p);
        let mut t = sde_symbolic::SymbolTable::new();
        let x = Expr::sym(t.fresh("x", Width::W8));
        assert_eq!(s.config_digest(), s.config_digest_reference());
        s.heap_store(10, x.clone());
        assert_eq!(s.config_digest(), s.config_digest_reference());
        // Overwriting a cell must subtract the replaced entry.
        s.heap_store(10, Expr::const_(5, Width::W8));
        assert_eq!(s.config_digest(), s.config_digest_reference());
        s.constrain(Expr::ult(x.clone(), Expr::const_(9, Width::W8)));
        assert_eq!(s.config_digest(), s.config_digest_reference());
        // A constraint simplifying to `true` is not stored and must not
        // disturb the accumulator.
        s.constrain(Expr::eq(x.clone(), x.clone()));
        assert_eq!(s.config_digest(), s.config_digest_reference());
        // One simplifying to `false` only flips the trivially-false flag.
        s.constrain(Expr::ne(x.clone(), x.clone()));
        assert_eq!(s.config_digest(), s.config_digest_reference());
        // Reboot clears memory (and its accumulator) but keeps the path.
        let r = s.rebooted();
        assert_eq!(r.config_digest(), r.config_digest_reference());
        assert_eq!(r.heap_acc, 0);
    }
}
