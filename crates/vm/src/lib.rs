//! A register-based symbolic bytecode virtual machine.
//!
//! This crate plays the role KLEE's LLVM interpreter plays in KleeNet:
//! it executes *node programs* over [`sde_symbolic::Expr`] values, forking
//! the execution state whenever a branch condition is symbolic and both
//! sides are feasible under the current path condition.
//!
//! The pieces:
//!
//! * [`Inst`] / [`Program`] / [`ProgramBuilder`] — a small, explicit
//!   instruction set plus a typed assembler with labels. Node software
//!   (the `sde-os` crate's Contiki-like runtime and Rime-style protocols)
//!   is expressed in this ISA.
//! * [`VmState`] — one execution state: call frames, a persistent
//!   byte-addressed global memory, the path condition, and a branch-trace
//!   digest identifying the explored path. Cloning is cheap by design
//!   (persistent structures underneath), which is what makes the
//!   state-mapping algorithms in `sde-core` affordable.
//! * [`step`]-ing the interpreter yields [`StepResult`]s: plain progress,
//!   a forked sibling, an environment call ([`Syscall`]: send a packet,
//!   arm a timer, …) or a detected [`BugReport`].
//!
//! Execution is event-driven: the engine invokes a handler function
//! (`on_boot`, `on_timer`, `on_recv`, …) on a state, runs it to
//! completion, and global memory plus path condition persist across
//! handler invocations.
//!
//! # Examples
//!
//! ```
//! use sde_vm::{ProgramBuilder, VmState, VmCtx, run_to_completion};
//! use sde_symbolic::{Solver, SymbolTable, Width};
//!
//! let mut pb = ProgramBuilder::new();
//! pb.function("on_boot", 0, |f| {
//!     let x = f.reg();
//!     f.make_symbolic(x, "x", Width::W8);
//!     let c = f.reg();
//!     let fifty = f.reg();
//!     f.const_(fifty, 50, Width::W8);
//!     f.bin(sde_symbolic::BinOp::Ult, c, x, fifty);
//!     let (small, big) = (f.label(), f.label());
//!     f.br(c, small, big);
//!     f.place(small);
//!     f.ret(None);
//!     f.place(big);
//!     f.ret(None);
//! });
//! let program = pb.build().unwrap();
//!
//! let solver = Solver::new();
//! let mut symbols = SymbolTable::new();
//! let mut ctx = VmCtx::new(&solver, &mut symbols);
//! let state = VmState::fresh(&program);
//! let outcome = run_to_completion(&program, state.prepared(&program, "on_boot", &[]).unwrap(), &mut ctx);
//! assert_eq!(outcome.finished.len(), 2); // the branch forked
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bug;
mod disasm;
mod interp;
mod isa;
mod preset;
mod program;
mod state;

pub use bug::{BugKind, BugReport};
pub use interp::{run_to_completion, step, HandlerOutcome, StepResult, Syscall, VmCtx};
pub use isa::{FuncId, Inst, Loc, Reg};
pub use preset::{InputRequest, Preset, RequestLog};
pub use program::{FunctionBuilder, Label, Program, ProgramBuilder, ProgramError};
pub use state::{Status, VmState};
