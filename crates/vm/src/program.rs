//! Programs and the builder/assembler API.

use crate::isa::{FuncId, Inst, Reg};

use sde_symbolic::Width;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compiled function: flat instruction list plus register-file size.
#[derive(Debug, Clone)]
pub struct Function {
    name: Arc<str>,
    param_count: u16,
    reg_count: u16,
    insts: Vec<Inst>,
}

impl Function {
    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters (copied into registers `r0..`).
    pub fn param_count(&self) -> u16 {
        self.param_count
    }

    /// Size of the register file.
    pub fn reg_count(&self) -> u16 {
        self.reg_count
    }

    /// The instruction at `index`.
    pub fn inst(&self, index: u32) -> Option<&Inst> {
        self.insts.get(index as usize)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` for an empty body.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// An immutable program: a set of named functions sharing one id space.
///
/// Programs are built with [`ProgramBuilder`] and shared (`Arc`-style, the
/// engine clones them cheaply since functions are behind `Arc` internally
/// via [`Program`] being wrapped in `Arc` at the engine level).
#[derive(Debug, Clone)]
pub struct Program {
    functions: Vec<Function>,
    by_name: HashMap<Arc<str>, FuncId>,
}

impl Program {
    /// Looks a function up by name.
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this program.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` when the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Iterates over `(id, function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::len).sum()
    }
}

/// Errors detected when assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was created but never [`FunctionBuilder::place`]d.
    UnplacedLabel {
        /// The function containing the label.
        function: String,
        /// The label index.
        label: u32,
    },
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A call references a function name never defined.
    UnknownFunction {
        /// The calling function.
        caller: String,
        /// The unresolved callee name.
        callee: String,
    },
    /// A function body fell through its final instruction (no terminator).
    MissingTerminator(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnplacedLabel { function, label } => {
                write!(
                    f,
                    "label L{label} in function `{function}` was never placed"
                )
            }
            ProgramError::DuplicateFunction(name) => {
                write!(f, "function `{name}` defined twice")
            }
            ProgramError::UnknownFunction { caller, callee } => {
                write!(f, "function `{caller}` calls undefined function `{callee}`")
            }
            ProgramError::MissingTerminator(name) => {
                write!(f, "function `{name}` can fall off the end of its body")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A label within a function under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Instruction with possibly unresolved targets.
#[derive(Debug, Clone)]
enum Draft {
    Ready(Inst),
    Jmp(Label),
    Br {
        cond: Reg,
        then_label: Label,
        else_label: Label,
    },
    Call {
        callee: Arc<str>,
        args: Vec<Reg>,
        dst: Option<Reg>,
    },
}

/// Builds one function: allocates registers, emits instructions, resolves
/// labels.
///
/// Obtained through [`ProgramBuilder::function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    name: Arc<str>,
    param_count: u16,
    next_reg: u16,
    drafts: Vec<Draft>,
    label_targets: Vec<Option<u32>>,
}

impl FunctionBuilder {
    fn new(name: Arc<str>, param_count: u16) -> Self {
        FunctionBuilder {
            name,
            param_count,
            next_reg: param_count,
            drafts: Vec::new(),
            label_targets: Vec::new(),
        }
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register file overflow");
        r
    }

    /// The i-th parameter register (`r0..`).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of the declared parameter range.
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.param_count, "parameter {i} out of range");
        Reg(i)
    }

    /// Creates a label to be [`place`](Self::place)d later.
    pub fn label(&mut self) -> Label {
        let l = Label(self.label_targets.len() as u32);
        self.label_targets.push(None);
        l
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics when the label was already placed.
    pub fn place(&mut self, label: Label) {
        let slot = &mut self.label_targets[label.0 as usize];
        assert!(slot.is_none(), "label placed twice");
        *slot = Some(self.drafts.len() as u32);
    }

    /// Emits `dst ← constant`.
    pub fn const_(&mut self, dst: Reg, value: u64, width: Width) {
        self.drafts
            .push(Draft::Ready(Inst::Const { dst, value, width }));
    }

    /// Emits `dst ← src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.drafts.push(Draft::Ready(Inst::Mov { dst, src }));
    }

    /// Emits `dst ← lhs op rhs`.
    pub fn bin(&mut self, op: sde_symbolic::BinOp, dst: Reg, lhs: Reg, rhs: Reg) {
        self.drafts
            .push(Draft::Ready(Inst::Bin { op, dst, lhs, rhs }));
    }

    /// Emits `dst ← op src`.
    pub fn un(&mut self, op: sde_symbolic::UnOp, dst: Reg, src: Reg) {
        self.drafts.push(Draft::Ready(Inst::Un { op, dst, src }));
    }

    /// Emits a width cast.
    pub fn cast(&mut self, op: sde_symbolic::CastOp, to: Width, dst: Reg, src: Reg) {
        self.drafts
            .push(Draft::Ready(Inst::Cast { op, to, dst, src }));
    }

    /// Emits a select (branch-free conditional).
    pub fn select(&mut self, dst: Reg, cond: Reg, then: Reg, els: Reg) {
        self.drafts.push(Draft::Ready(Inst::Select {
            dst,
            cond,
            then,
            els,
        }));
    }

    /// Emits a load of `width` bits from the address in `addr`.
    pub fn load(&mut self, dst: Reg, addr: Reg, width: Width) {
        self.drafts
            .push(Draft::Ready(Inst::Load { dst, addr, width }));
    }

    /// Emits a store of `src` to the address in `addr`.
    pub fn store(&mut self, addr: Reg, src: Reg) {
        self.drafts.push(Draft::Ready(Inst::Store { addr, src }));
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.drafts.push(Draft::Jmp(label));
    }

    /// Emits a conditional branch.
    pub fn br(&mut self, cond: Reg, then_label: Label, else_label: Label) {
        self.drafts.push(Draft::Br {
            cond,
            then_label,
            else_label,
        });
    }

    /// Emits a call to the named function (resolved at build time).
    pub fn call(&mut self, callee: &str, args: &[Reg], dst: Option<Reg>) {
        self.drafts.push(Draft::Call {
            callee: Arc::from(callee),
            args: args.to_vec(),
            dst,
        });
    }

    /// Emits a return.
    pub fn ret(&mut self, val: Option<Reg>) {
        self.drafts.push(Draft::Ready(Inst::Ret { val }));
    }

    /// Emits a fresh symbolic input.
    pub fn make_symbolic(&mut self, dst: Reg, name: &str, width: Width) {
        self.drafts.push(Draft::Ready(Inst::MakeSymbolic {
            dst,
            name: Arc::from(name),
            width,
        }));
    }

    /// Emits a packet send.
    pub fn send(&mut self, dest: Reg, payload: &[Reg]) {
        self.drafts.push(Draft::Ready(Inst::Send {
            dest,
            payload: payload.to_vec(),
        }));
    }

    /// Emits a timer arm.
    pub fn set_timer(&mut self, delay: Reg, timer: u16) {
        self.drafts
            .push(Draft::Ready(Inst::SetTimer { delay, timer }));
    }

    /// Emits `dst ← now`.
    pub fn now(&mut self, dst: Reg) {
        self.drafts.push(Draft::Ready(Inst::Now { dst }));
    }

    /// Emits `dst ← my node id`.
    pub fn my_id(&mut self, dst: Reg) {
        self.drafts.push(Draft::Ready(Inst::MyId { dst }));
    }

    /// Emits an assertion.
    pub fn assert(&mut self, cond: Reg, msg: &str) {
        self.drafts.push(Draft::Ready(Inst::Assert {
            cond,
            msg: Arc::from(msg),
        }));
    }

    /// Emits an assumption.
    pub fn assume(&mut self, cond: Reg) {
        self.drafts.push(Draft::Ready(Inst::Assume { cond }));
    }

    /// Emits an unconditional failure.
    pub fn fail(&mut self, msg: &str) {
        self.drafts.push(Draft::Ready(Inst::Fail {
            msg: Arc::from(msg),
        }));
    }

    /// Emits a halt (node stops for good).
    pub fn halt(&mut self) {
        self.drafts.push(Draft::Ready(Inst::Halt));
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.drafts.push(Draft::Ready(Inst::Nop));
    }

    /// Convenience: allocate a register and load a constant into it.
    pub fn imm(&mut self, value: u64, width: Width) -> Reg {
        let r = self.reg();
        self.const_(r, value, width);
        r
    }

    fn finish(self, resolve: &HashMap<Arc<str>, FuncId>) -> Result<Function, ProgramError> {
        let name = self.name.clone();
        // Every label must be placed; labels may point one past the end
        // only if nothing jumps there — we reject that for simplicity by
        // also requiring in-range targets below.
        let targets: Vec<u32> = self
            .label_targets
            .iter()
            .enumerate()
            .map(|(i, t)| {
                t.ok_or_else(|| ProgramError::UnplacedLabel {
                    function: name.to_string(),
                    label: i as u32,
                })
            })
            .collect::<Result<_, _>>()?;

        let insts: Vec<Inst> = self
            .drafts
            .into_iter()
            .map(|d| match d {
                Draft::Ready(i) => Ok(i),
                Draft::Jmp(l) => Ok(Inst::Jmp {
                    target: targets[l.0 as usize],
                }),
                Draft::Br {
                    cond,
                    then_label,
                    else_label,
                } => Ok(Inst::Br {
                    cond,
                    then_target: targets[then_label.0 as usize],
                    else_target: targets[else_label.0 as usize],
                }),
                Draft::Call { callee, args, dst } => {
                    let func = resolve.get(&callee).copied().ok_or_else(|| {
                        ProgramError::UnknownFunction {
                            caller: name.to_string(),
                            callee: callee.to_string(),
                        }
                    })?;
                    Ok(Inst::Call { func, args, dst })
                }
            })
            .collect::<Result<_, _>>()?;

        // The body must end in a terminator (or be terminated everywhere a
        // fall-through could reach the end). We check only the last
        // instruction; richer CFG validation is left to tests.
        match insts.last() {
            Some(
                Inst::Ret { .. }
                | Inst::Jmp { .. }
                | Inst::Br { .. }
                | Inst::Halt
                | Inst::Fail { .. },
            ) => {}
            _ => return Err(ProgramError::MissingTerminator(name.to_string())),
        }

        Ok(Function {
            name,
            param_count: self.param_count,
            reg_count: self.next_reg,
            insts,
        })
    }
}

/// Builds a [`Program`] out of named functions.
///
/// # Examples
///
/// ```
/// use sde_vm::ProgramBuilder;
///
/// let mut pb = ProgramBuilder::new();
/// pb.function("main", 0, |f| {
///     let r = f.imm(1, sde_symbolic::Width::W8);
///     f.ret(Some(r));
/// });
/// let program = pb.build().unwrap();
/// assert!(program.function_id("main").is_some());
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    builders: Vec<FunctionBuilder>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a function; the closure receives its [`FunctionBuilder`].
    ///
    /// Calls between functions are resolved by name when
    /// [`build`](Self::build) runs, so definition order does not matter.
    pub fn function(
        &mut self,
        name: &str,
        param_count: u16,
        body: impl FnOnce(&mut FunctionBuilder),
    ) -> &mut Self {
        let mut fb = FunctionBuilder::new(Arc::from(name), param_count);
        body(&mut fb);
        self.builders.push(fb);
        self
    }

    /// Assembles the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] for unplaced labels, duplicate or unknown
    /// function names, and bodies without a final terminator.
    pub fn build(self) -> Result<Program, ProgramError> {
        let mut by_name: HashMap<Arc<str>, FuncId> = HashMap::new();
        for (i, fb) in self.builders.iter().enumerate() {
            if by_name.insert(fb.name.clone(), FuncId(i as u32)).is_some() {
                return Err(ProgramError::DuplicateFunction(fb.name.to_string()));
            }
        }
        let functions: Vec<Function> = self
            .builders
            .into_iter()
            .map(|fb| fb.finish(&by_name))
            .collect::<Result<_, _>>()?;
        Ok(Program { functions, by_name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sde_symbolic::BinOp;

    #[test]
    fn build_simple_function() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 2, |f| {
            let dst = f.reg();
            f.bin(BinOp::Add, dst, f.param(0), f.param(1));
            f.ret(Some(dst));
        });
        let p = pb.build().unwrap();
        let id = p.function_id("f").unwrap();
        let func = p.function(id);
        assert_eq!(func.param_count(), 2);
        assert_eq!(func.reg_count(), 3);
        assert_eq!(func.len(), 2);
        assert_eq!(p.inst_count(), 2);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut pb = ProgramBuilder::new();
        pb.function("loop", 0, |f| {
            let top = f.label();
            let out = f.label();
            f.place(top);
            let c = f.imm(0, Width::BOOL);
            f.br(c, top, out);
            f.place(out);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let func = p.function(p.function_id("loop").unwrap());
        match func.inst(1) {
            Some(Inst::Br {
                then_target,
                else_target,
                ..
            }) => {
                assert_eq!(*then_target, 0);
                assert_eq!(*else_target, 2);
            }
            other => panic!("unexpected inst {other:?}"),
        }
    }

    #[test]
    fn unplaced_label_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.function("bad", 0, |f| {
            let l = f.label();
            f.jmp(l);
        });
        match pb.build() {
            Err(ProgramError::UnplacedLabel { function, .. }) => assert_eq!(function, "bad"),
            other => panic!("expected UnplacedLabel, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_function_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 0, |f| f.ret(None));
        pb.function("f", 0, |f| f.ret(None));
        assert_eq!(
            pb.build().unwrap_err(),
            ProgramError::DuplicateFunction("f".into())
        );
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 0, |f| {
            f.call("ghost", &[], None);
            f.ret(None);
        });
        match pb.build() {
            Err(ProgramError::UnknownFunction { caller, callee }) => {
                assert_eq!(caller, "f");
                assert_eq!(callee, "ghost");
            }
            other => panic!("expected UnknownFunction, got {other:?}"),
        }
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 0, |f| {
            f.nop();
        });
        assert_eq!(
            pb.build().unwrap_err(),
            ProgramError::MissingTerminator("f".into())
        );
    }

    #[test]
    fn cross_function_calls_resolve_regardless_of_order() {
        let mut pb = ProgramBuilder::new();
        pb.function("caller", 0, |f| {
            let r = f.reg();
            f.call("callee", &[], Some(r));
            f.ret(Some(r));
        });
        pb.function("callee", 0, |f| {
            let r = f.imm(9, Width::W8);
            f.ret(Some(r));
        });
        let p = pb.build().unwrap();
        let caller = p.function(p.function_id("caller").unwrap());
        match caller.inst(0) {
            Some(Inst::Call { func, .. }) => {
                assert_eq!(p.function(*func).name(), "callee");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    use sde_symbolic::Width;
}
