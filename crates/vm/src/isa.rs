//! The instruction set.

use sde_symbolic::{BinOp, CastOp, UnOp, Width};
use std::fmt;
use std::sync::Arc;

/// A virtual register within one function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Index of a function within a [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A code location: function plus instruction index. Used in bug reports
/// and in the branch-trace digest that identifies an execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// The function.
    pub func: FuncId,
    /// The instruction index within the function.
    pub index: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.func, self.index)
    }
}

/// One VM instruction.
///
/// Jump targets are absolute instruction indices within the owning
/// function; the [`FunctionBuilder`](crate::FunctionBuilder) resolves
/// labels to indices at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst ← constant`
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant value (truncated to `width`).
        value: u64,
        /// Constant width.
        width: Width,
    },
    /// `dst ← src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← lhs op rhs`
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// `dst ← op src`
    Un {
        /// The operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← cast(src) to width`
    Cast {
        /// The cast kind.
        op: CastOp,
        /// Target width.
        to: Width,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← cond ? then : els` (no fork; builds an ite term)
    Select {
        /// Destination register.
        dst: Reg,
        /// Width-1 condition register.
        cond: Reg,
        /// Value when true.
        then: Reg,
        /// Value when false.
        els: Reg,
    },
    /// `dst ← memory[addr .. addr+width/8]` (little endian)
    Load {
        /// Destination register.
        dst: Reg,
        /// Address register (must concretize under the path condition).
        addr: Reg,
        /// Width of the loaded value (multiple of 8 bits).
        width: Width,
    },
    /// `memory[addr ..] ← src` (little endian)
    Store {
        /// Address register (must concretize under the path condition).
        addr: Reg,
        /// Source register (width must be a multiple of 8 bits).
        src: Reg,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// Conditional branch on a width-1 register; forks when symbolic and
    /// both sides are feasible.
    Br {
        /// Width-1 condition register.
        cond: Reg,
        /// Target when the condition is 1.
        then_target: u32,
        /// Target when the condition is 0.
        else_target: u32,
    },
    /// Calls another function in the same program.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument registers (copied into the callee's first registers).
        args: Vec<Reg>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// Returns from the current function.
    Ret {
        /// Returned register, if any.
        val: Option<Reg>,
    },
    /// Introduces a fresh symbolic input.
    MakeSymbolic {
        /// Destination register.
        dst: Reg,
        /// Human-readable input name (appears in test cases).
        name: Arc<str>,
        /// Width of the symbolic input.
        width: Width,
    },
    /// Sends a packet: environment call handled by the engine.
    Send {
        /// Destination node id register (must concretize).
        dest: Reg,
        /// Payload registers (arbitrary widths, may be symbolic).
        payload: Vec<Reg>,
    },
    /// Arms a one-shot timer: environment call handled by the engine.
    SetTimer {
        /// Delay register in virtual milliseconds (must concretize).
        delay: Reg,
        /// Timer identifier passed back to `on_timer`.
        timer: u16,
    },
    /// `dst ← current virtual time` (64-bit).
    Now {
        /// Destination register.
        dst: Reg,
    },
    /// `dst ← node id of the executing node` (16-bit).
    MyId {
        /// Destination register.
        dst: Reg,
    },
    /// Checks a width-1 condition; failing executions become bug reports.
    Assert {
        /// Width-1 condition register.
        cond: Reg,
        /// Message attached to the bug report.
        msg: Arc<str>,
    },
    /// Constrains the path condition; infeasible states terminate silently.
    Assume {
        /// Width-1 condition register.
        cond: Reg,
    },
    /// Unconditional failure (reached dead code, unexpected message, …).
    Fail {
        /// Message attached to the bug report.
        msg: Arc<str>,
    },
    /// Stops the node program for good (no further handlers run).
    Halt,
    /// Does nothing (label placeholder).
    Nop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(FuncId(1).to_string(), "f1");
        assert_eq!(
            Loc {
                func: FuncId(1),
                index: 9
            }
            .to_string(),
            "f1@9"
        );
    }

    #[test]
    fn instructions_compare() {
        let a = Inst::Const {
            dst: Reg(0),
            value: 1,
            width: Width::W8,
        };
        let b = Inst::Const {
            dst: Reg(0),
            value: 1,
            width: Width::W8,
        };
        assert_eq!(a, b);
        assert_ne!(a, Inst::Nop);
    }
}
