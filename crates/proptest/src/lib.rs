//! Offline, in-workspace substitute for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) API subset the SDE test-suite uses with the same
//! names and shapes: [`Strategy`] with `prop_map`/`prop_recursive`/
//! `boxed`, [`BoxedStrategy`], [`Just`], `any::<T>()`, range strategies,
//! `prop::collection::vec`, the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case index and the
//!   run's seed; re-running reproduces it exactly (generation is a pure
//!   function of `(seed, case index)`).
//! * **Deterministic by default.** The seed is fixed unless
//!   `PROPTEST_SEED` is set in the environment, so CI failures reproduce
//!   locally.
//! * **`PROPTEST_CASES`** overrides the case count globally.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, and good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one `(seed, case)` pair.
    pub fn for_case(seed: u64, case: u64) -> TestRng {
        // Decorrelate the per-case streams.
        let mut r = TestRng {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        r.next_u64();
        r
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping (slight modulo bias is
        // irrelevant for test generation).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values — proptest's central trait, minus
/// shrinking.
pub trait Strategy: Send + Sync {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf; `branch` turns a
    /// strategy for the type into a strategy for one more level. `depth`
    /// bounds the recursion; `_desired_size`/`_expected_branch` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + Send + Sync + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.boxed();
        let leaf = current.clone();
        for _ in 0..depth.max(1) {
            let deeper = branch(current.clone()).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy::from_fn(move |rng| {
                // Recurse half the time, so expected depth stays small
                // while the bound still permits deep expressions.
                if rng.next_u64() & 1 == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy into a cheaply-clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }

    /// Draws a value through a [`TestRunner`] (the explicit-runner API).
    ///
    /// # Errors
    ///
    /// Never fails in this implementation; the `Result` mirrors proptest.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Self::Value>, String> {
        Ok(ValueTree {
            value: self.generate(&mut runner.rng),
        })
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Send + Sync,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T + Send + Sync>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + Send + Sync + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Arc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Send + Sync> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between equally-weighted strategies (the engine behind
/// [`prop_oneof!`]).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    BoxedStrategy::from_fn(move |rng| {
        let i = rng.below(options.len() as u64) as usize;
        options[i].generate(rng)
    })
}

// ----- primitive strategies -------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy yielding any value of `T` (`any::<u64>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary + Send + Sync> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                if lo == 0 && hi == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(hi - lo + 1)) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
);

// ----- collection strategies ------------------------------------------------

/// `prop::collection` — sized collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// runner plumbing
// ---------------------------------------------------------------------------

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The explicit-runner API: draws values from strategies outside the
/// [`proptest!`] macro.
pub mod test_runner {
    pub use super::{TestRunner, ValueTree};
}

/// Drives strategies directly (`TestRunner::deterministic()` +
/// [`Strategy::new_tree`]).
#[derive(Debug, Clone)]
pub struct TestRunner {
    pub(crate) rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed seed — every call sequence reproduces.
    pub fn deterministic() -> TestRunner {
        TestRunner {
            rng: TestRng::for_case(0x5de5_de5d_e5de_5de5, 0),
        }
    }
}

/// A drawn value (proptest's value-plus-shrink-tree, minus the tree).
#[derive(Debug, Clone)]
pub struct ValueTree<T> {
    value: T,
}

impl<T: Clone> ValueTree<T> {
    /// The drawn value.
    pub fn current(&self) -> T {
        self.value.clone()
    }
}

/// Why a test-case body did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case does not apply; draw another.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// The seed in effect for [`proptest!`]-generated tests.
pub fn env_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5de5_de5d_e5de_5de5)
}

/// The case-count override, if any.
pub fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Runs one property: `cases` draws of `strategy`, skipping rejections.
/// Panics with seed + case index on the first failure.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: fmt::Debug + Clone,
{
    let seed = env_seed();
    let cases = env_cases().unwrap_or(config.cases);
    let mut rejected = 0u32;
    for case in 0..u64::from(cases) {
        let mut rng = TestRng::for_case(seed, case);
        let value = strategy.generate(&mut rng);
        match body(value.clone()) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "property `{name}` failed at case {case} (seed {seed:#x}):\n  input: {value:?}\n  {msg}\n\
                 re-run with PROPTEST_SEED={seed} to reproduce"
            ),
        }
    }
    assert!(
        rejected < cases,
        "property `{name}`: every case was rejected by prop_assume! ({rejected}/{cases})"
    );
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::run_property(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    // Without a config header.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Fails the current case if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// `proptest::prelude` — everything the `use proptest::prelude::*` idiom
/// expects.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, one_of, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop::` module alias (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn determinism() {
        let s = (0u64..=100, any::<u16>()).prop_map(|(a, b)| (a, b));
        let mut r1 = TestRng::for_case(7, 3);
        let mut r2 = TestRng::for_case(7, 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1, 1);
        for _ in 0..1000 {
            let v = (3u16..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0u64..=255).generate(&mut rng);
            assert!(w <= 255);
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case(9, 9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn collection_vec_respects_len() {
        let s = collection::vec(any::<u32>(), 2..5);
        let mut rng = TestRng::for_case(4, 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0u64..=10, y in 1u16..4) {
            prop_assume!(x != 3);
            prop_assert!(x <= 10);
            prop_assert_eq!(u64::from(y) * x / x.max(1), u64::from(y) * x / x.max(1));
            prop_assert_ne!(y, 0);
        }
    }

    #[test]
    fn runner_api_draws() {
        let s = (0u8..4).prop_map(|v| v + 10).boxed();
        let mut runner = TestRunner::deterministic();
        let v = s.new_tree(&mut runner).unwrap().current();
        assert!((10..14).contains(&v));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    let _ = v;
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..=255).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_case(2, 2);
        for _ in 0..100 {
            // 4 recursion levels on top of a leaf bounds depth at 5.
            assert!(depth(&s.generate(&mut rng)) <= 5);
        }
    }
}
