//! Quickstart: single-node symbolic execution (the paper's Figure 1).
//!
//! Runs the program
//!
//! ```c
//! int x = symbolic_input();
//! if (x == 0)      { /* path 1 */ }
//! else if (x < 50) {
//!     if (x > 10)  { /* path 2 */ }
//!     else         { /* path 3 */ }
//! } else           { /* path 4 */ }
//! ```
//!
//! symbolically, prints the path condition of each explored path, and
//! solves each one into a concrete test case — reproducing the paper's
//! Figure 1 table.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sde::prelude::*;
use sde_core::testgen;

fn main() {
    // A one-node "network" running the Figure 1 program.
    let topology = Topology::disconnected(1);
    let program = sde::os::apps::fig1::program();
    let scenario = Scenario::new(topology, vec![program]);

    let mut engine = sde::core::Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();

    println!("Figure 1: regular symbolic execution of one node\n");
    println!("explored paths:");
    let mut states: Vec<_> = engine.states().collect();
    states.sort_by_key(|s| s.id);
    for state in &states {
        let tag = state
            .vm
            .memory_byte(sde::os::layout::PATH_TAG)
            .as_const()
            .unwrap_or(0);
        println!("  path {tag}: {{ {} }}", state.vm.path_condition());
    }

    println!("\ngenerated test cases:");
    let report = testgen::generate(&engine, 16);
    for case in &report.cases {
        for node in &case.nodes {
            for (name, value) in &node.inputs {
                println!("  testcase {}: {name} = {value}", case.id + 1);
            }
        }
    }

    assert_eq!(report.cases.len(), 4, "Figure 1 has exactly four paths");
    println!("\n4 unique execution paths, 4 concrete test cases — as in the paper.");
}
