//! End-to-end bug finding: detect, generate a test case, replay it.
//!
//! The sink of the collect workload asserts gap-free in-order delivery
//! (`strict_sink`) — an end-to-end property a single symbolic packet
//! drop violates. SDE finds the violating path, the test generator
//! solves its path condition into concrete per-node inputs ("which node
//! dropped which packet"), and the replay engine re-executes the network
//! with those inputs pinned: no forking, exactly one dscenario, same
//! assertion failure. This is the paper's promised workflow: "concrete
//! inputs and deterministic schedules to analyze erroneous program
//! paths".
//!
//! ```sh
//! cargo run --example testgen_replay
//! ```

use sde::prelude::*;
use sde_core::testgen;

fn scenario(strict: bool) -> Scenario {
    let topology = Topology::line(4);
    let cfg = CollectConfig {
        source: NodeId(3),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 3,
        strict_sink: strict,
    };
    let failures = FailureConfig::new().with_drops([NodeId(1), NodeId(2)], 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(6000)
}

fn main() {
    // Phase 1: symbolic run, SDS mapping.
    let mut engine = sde::core::Engine::new(scenario(true), Algorithm::Sds);
    engine.run_in_place();
    let states: Vec<_> = engine.states().collect();
    println!(
        "symbolic run: {} states, {} dstates",
        states.len(),
        engine.mapper().group_count()
    );

    // Phase 2: the bug.
    let bugs: Vec<_> = engine
        .states()
        .filter_map(|s| match s.vm.status() {
            sde::vm::Status::Bugged(report) => Some((s.id, s.node, report.clone())),
            _ => None,
        })
        .collect();
    assert!(
        !bugs.is_empty(),
        "the strict sink must catch the drop-induced gap"
    );
    let (bug_state, bug_node, report) = &bugs[0];
    println!("\nbug found on {bug_node} (state {bug_state}):");
    println!("  {report}");

    // Phase 3: a concrete witness. The cause of the sink's assertion
    // lives in a *forwarder's* path condition (its `drop = 1`
    // constraint), so the witness is solved from a whole dscenario
    // containing the bug state — not from the sink's own constraints.
    let model = testgen::witness_for(&engine, *bug_state)
        .expect("some dscenario containing the bug state is feasible");
    println!("\nconcrete witness (symbolic inputs by creation order):");
    for (var, value) in model.iter() {
        let name = engine
            .symbols()
            .get(var)
            .map(|v| v.to_string())
            .unwrap_or_default();
        println!("  {name} = {value}");
    }

    // Phase 4: replay with the inputs pinned — fully concrete run.
    let preset = sde::vm::Preset::from_model(&model, engine.symbols());
    let replay = sde::core::Engine::new(scenario(true), Algorithm::Sds)
        .with_preset(preset)
        .run();
    println!(
        "\nreplay: {} states (one per node — no forking), {} bug(s) reproduced",
        replay.total_states,
        replay.bugs.len()
    );
    assert_eq!(
        replay.total_states, 4,
        "concrete replay explores one dscenario"
    );
    assert!(
        !replay.bugs.is_empty(),
        "the replayed inputs must reproduce the assertion failure"
    );

    // Phase 5: the full §IV-C explosion still works alongside.
    let cases = testgen::generate(&engine, 8);
    println!(
        "\ntest generation: {} dscenarios represented, {} cases emitted (limit 8, truncated: {})",
        cases.dscenarios_seen,
        cases.cases.len(),
        cases.truncated
    );
}
