//! The paper's evaluation scenario (§IV-A) at laptop scale.
//!
//! A 5×5 grid of sensor nodes; the bottom-right corner sends a data
//! packet every virtual second toward the sink in the top-left corner
//! along a static multi-hop route; every transmission is perceived by
//! the transmitter's neighbors; route nodes and their neighbors may
//! symbolically drop one packet each. The same scenario is executed
//! under all three state mapping algorithms and the Table-I-style
//! summary is printed.
//!
//! ```sh
//! cargo run --release --example grid_collection
//! ```

use sde::prelude::*;

fn main() {
    let (width, height) = (5, 5);
    let topology = Topology::grid(width, height);
    let cfg = CollectConfig::paper_grid(width, height);
    let failures =
        FailureConfig::new().drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    let scenario = Scenario::new(topology.clone(), programs)
        .with_failures(failures)
        .with_duration_ms(10_000)
        // The reproducible analogue of the paper's 40 GB abort limit.
        .with_state_cap(150_000);

    println!(
        "Multi-hop data collection on a {width}x{height} grid ({} nodes)",
        topology.len()
    );
    println!(
        "source {} → sink {} over {} hops; 10 packets; symbolic drops on route + neighbors\n",
        cfg.source,
        cfg.sink,
        topology.distance(cfg.source, cfg.sink).unwrap()
    );
    println!("alg  |      runtime |     states |          RAM |");
    println!("-----+--------------+------------+--------------+----------");

    for alg in Algorithm::ALL {
        let report = run(&scenario, alg);
        println!("{}", report.table_row());
        if alg == Algorithm::Sds {
            assert_eq!(
                report.duplicate_states, 0,
                "SDS must not create duplicate states (paper §III-D)"
            );
        }
    }

    println!("\nCOB forks every node on every symbolic drop and explodes;");
    println!("COW forks only on conflicting sends but duplicates bystanders;");
    println!("SDS forks only genuine receivers — fastest and smallest.");
}
