//! A tour of the structured tracing subsystem (DESIGN.md §7).
//!
//! Runs the paper's Figure 1-style scenario — a 3-node line with one
//! symbolic packet drop — under SDS with a [`RingSink`] recorder
//! attached, then shows the three things a trace is for:
//!
//! 1. **export** — deterministic JSONL (byte-identical across runs and
//!    worker counts) and a Chrome `trace_event` file for
//!    `chrome://tracing` / Perfetto;
//! 2. **lineage** — the fork forest rooted at the k initial states, with
//!    per-state ancestry chains (which drop/branch/mapping forks created
//!    this state?);
//! 3. **summary** — [`RunReport::trace`] counters, collected even
//!    without a sink attached.
//!
//! ```sh
//! cargo run --release --example trace_tour
//! ```

use sde::prelude::*;
use std::sync::Arc;

fn main() {
    let topology = Topology::line(3);
    let cfg = CollectConfig {
        source: NodeId(2),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 3,
        strict_sink: false,
    };
    let failures = FailureConfig::new().with_drops(vec![NodeId(1)], 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(5000);

    // 1. Attach a bounded recorder and run.
    let sink = Arc::new(RingSink::default());
    let report = Engine::new(scenario, Algorithm::Sds)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>)
        .run();
    let events = sink.take();
    println!(
        "run: {} states, {} packets, {} trace events\n",
        report.total_states,
        report.packets,
        events.len()
    );

    // 2. Export. Deterministic JSONL drops wall-clock fields so repeated
    // runs (serial or parallel, any worker count) produce identical
    // bytes; the Chrome file keeps them for timeline viewing.
    let dir = std::env::temp_dir().join("sde-trace-tour");
    std::fs::create_dir_all(&dir).expect("create out dir");
    let jsonl = dir.join("trace.jsonl");
    sde::trace::write_jsonl(&jsonl, &events, true).expect("write jsonl");
    sde::trace::write_chrome_trace(&dir.join("trace.chrome.json"), &events)
        .expect("write chrome trace");
    let parsed = sde::trace::read_jsonl(&jsonl).expect("trace round-trips");
    assert_eq!(parsed.len(), events.len());
    println!("exported: {} (and trace.chrome.json)", jsonl.display());

    // 3. Lineage: every state traces back to exactly one of the k roots.
    let lineage = Lineage::from_events(events.iter().map(|te| &te.ev)).expect("valid lineage");
    lineage.validate().expect("lineage invariants hold");
    println!(
        "lineage: {} roots, {} states, {} forks",
        lineage.roots().len(),
        lineage.states().len(),
        lineage.fork_count()
    );
    let last = lineage
        .states()
        .last()
        .copied()
        .expect("at least one state");
    println!("ancestry of the last-created state {last}:");
    for step in lineage.ancestry(last).expect("reachable") {
        match step.created_by {
            None => println!("  {} (root)", step.state),
            Some(reason) => println!("  {} <- fork[{}]", step.state, reason.as_str()),
        }
    }

    // 4. The summary rides on every report, sink or no sink.
    println!("\n{}", report.trace.render());
}
