//! The §II-B logical-conflict example, made concrete.
//!
//! A 5-node line `0 — 1 — 2 — 3 — 4` forwards data from node 4 to node 0
//! hop by hop. Node 3 (the first forwarder) may symbolically drop the
//! packet. In the drop branch the downstream nodes never hear anything —
//! so when node 0 eventually receives the forwarded packet in the other
//! branch, its state is *logically* conflicted with node 3's dropping
//! sibling even though nodes 0 and 3 never exchanged a packet directly.
//! The state mapping algorithms must keep those states in separate
//! dscenarios/dstates; this example shows what each algorithm pays —
//! and makes an instructive boundary case visible: on a line with
//! broadcast transmissions *every* node eventually receives the packet,
//! so there are no bystanders at all. COB forks all four peers eagerly
//! at the drop fork, COW forks all four at the first conflicting
//! forward, and SDS forks each node lazily when the packet actually
//! reaches it — four forks each, by three different routes. The
//! algorithms only diverge when real bystanders exist (see the
//! `grid_collection` example).
//!
//! ```sh
//! cargo run --example line_conflict
//! ```

use sde::prelude::*;

fn scenario() -> Scenario {
    let topology = Topology::line(5);
    let cfg = CollectConfig {
        source: NodeId(4),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 2,
        strict_sink: false,
    };
    // Only the first forwarder may symbolically drop — the minimal setup
    // that creates rivals on node 3 and a logical conflict between its
    // dropping sibling and every downstream receiver.
    let failures = FailureConfig::new().with_drops([NodeId(3)], 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(5000)
        .with_history_tracking(true)
}

fn main() {
    println!("Line 4 → 3 → 2 → 1 → 0; node 3 may symbolically drop the first packet.\n");
    println!("alg  | states | groups | mapper forks | duplicates at end");
    println!("-----+--------+--------+--------------+------------------");
    for alg in Algorithm::ALL {
        let r = run(&scenario(), alg);
        println!(
            "{:<4} | {:>6} | {:>6} | {:>12} | {:>17}",
            r.algorithm, r.total_states, r.groups, r.mapper.mapper_forks, r.duplicate_states
        );
    }

    // The logical conflict is visible in the communication histories:
    // within each represented dscenario every pair of states must be
    // direct-conflict-free (the dstate invariant), even though states
    // from different dscenarios would conflict.
    let mut engine = sde::core::Engine::new(scenario(), Algorithm::Sds);
    engine.run_in_place();
    let mut pairs = 0;
    let mut dscenarios = 0;
    for dscenario in engine.mapper().dscenarios() {
        dscenarios += 1;
        let members: Vec<_> = dscenario
            .iter()
            .filter_map(|id| engine.state(*id))
            .collect();
        for (i, a) in members.iter().enumerate() {
            for b in members.iter().skip(i + 1) {
                let conflict = a
                    .history
                    .direct_conflict(a.node, &b.history, b.node)
                    .expect("histories tracked");
                assert!(
                    !conflict,
                    "{} and {} conflict inside one dscenario",
                    a.id, b.id
                );
                pairs += 1;
            }
        }
    }
    println!(
        "\nSDS represents {dscenarios} dscenarios; verified {pairs} state pairs \
         inside them: all conflict-free ✓"
    );
}
