//! Protocol verification under symbolic failures: the paper's §IV-A
//! pitch ("symbolic failures help us to detect corner-cases before
//! deployment") applied to a retransmission protocol.
//!
//! A client sends sequence-numbered requests to a server and
//! retransmits on timeout; the server acknowledges idempotently. The
//! network may drop one packet at either endpoint and duplicate one at
//! the server — four failure combinations, all explored in a single
//! symbolic run. The end-to-end property "every request is eventually
//! acknowledged exactly once" is checked on *every* explored branch.
//!
//! ```sh
//! cargo run --example protocol_verification
//! ```

use sde::prelude::*;
use sde_core::Engine;
use sde_os::apps::pingpong::{self, PingPongConfig};
use sde_os::layout;

fn main() {
    let topology = Topology::line(2);
    let cfg = PingPongConfig {
        client: NodeId(0),
        server: NodeId(1),
        requests: 3,
        timeout_ms: 500,
    };
    let failures = FailureConfig::new()
        .with_drops([NodeId(0), NodeId(1)], 1)
        .with_duplicates([NodeId(1)], 1);
    let programs = pingpong::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(10_000);

    let mut engine = Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();

    println!("pingpong under symbolic failures (1 drop per endpoint + 1 duplication)");
    println!(
        "explored: {} states in {} dstates\n",
        engine.states().count(),
        engine.mapper().group_count()
    );

    println!("final client branches (node 0):");
    println!("  acked | retries");
    let mut all_acked = true;
    let mut some_retry = false;
    for s in engine
        .states()
        .filter(|s| s.node == NodeId(0) && s.is_live())
    {
        let acked = s.vm.memory_byte(layout::ACKED).as_const().unwrap();
        let retries = s.vm.memory_byte(layout::RETRIES).as_const().unwrap();
        println!("  {acked:>5} | {retries:>7}");
        all_acked &= acked == u64::from(cfg.requests);
        some_retry |= retries > 0;
    }
    assert!(
        all_acked,
        "retransmission must mask every failure combination"
    );
    assert!(some_retry, "the retry path must be exercised somewhere");

    println!("\nserver branches (node 1):");
    println!("  served | duplicate requests seen");
    for s in engine
        .states()
        .filter(|s| s.node == NodeId(1) && s.is_live())
    {
        let served = s.vm.memory_byte(layout::SERVED).as_const().unwrap();
        let dups = s.vm.memory_byte(layout::DUP_REQS).as_const().unwrap();
        println!("  {served:>6} | {dups:>23}");
    }

    println!(
        "\nverified on every branch: all {} requests acknowledged,",
        cfg.requests
    );
    println!("losses masked by retransmission, duplicates absorbed by the server.");
}
