//! The §IV-C limitation: network flooding neutralizes SDS.
//!
//! "It is easy to set-up test scenarios or applications where COW and
//! SDS algorithms perform nearly as bad as COB. One example would be a
//! full-meshed network where nodes continuously transmit data to their
//! k − 1 neighbors."
//!
//! Every node relays every fresh sequence number to all peers, and every
//! node may symbolically drop one packet — so nearly every state is a
//! sender, a rival or a target, and there are almost no bystanders whose
//! duplication SDS could avoid. Compare the COW/SDS gap here with the
//! `grid_collection` example.
//!
//! ```sh
//! cargo run --release --example flooding
//! ```

use sde::prelude::*;

fn main() {
    let k = 4;
    let topology = Topology::full_mesh(k);
    let cfg = FloodConfig {
        initiator: NodeId(0),
        rounds: 2,
        interval_ms: 1000,
    };
    let failures = FailureConfig::new().with_drops(topology.nodes(), 1);
    let programs = sde::os::apps::flood::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(4000)
        .with_state_cap(500_000);

    println!("Flooding on a {k}-node full mesh; every node may drop one packet.\n");
    println!("alg  | states | groups | mapper forks");
    println!("-----+--------+--------+-------------");
    let mut states_by_alg = Vec::new();
    for alg in Algorithm::ALL {
        let r = run(&scenario, alg);
        println!(
            "{:<4} | {:>6} | {:>6} | {:>12}",
            r.algorithm, r.total_states, r.groups, r.mapper.mapper_forks
        );
        states_by_alg.push((alg, r.total_states as f64));
    }

    let cob = states_by_alg[0].1;
    let sds = states_by_alg[2].1;
    println!(
        "\nSDS saves only {:.1}x over COB here (vs orders of magnitude on the grid):",
        cob / sds
    );
    println!("with all-to-all communication there are no bystanders left to share.");
}
