//! # SDE — Scalable Symbolic Execution of Distributed Systems
//!
//! A from-scratch Rust reproduction of *"Scalable Symbolic Execution of
//! Distributed Systems"* (Sasnauskas et al., ICDCS 2011): symbolic
//! execution lifted to networks of communicating programs, with the
//! paper's three **state mapping algorithms** — COB, COW and SDS — and
//! every substrate they need (constraint solver, symbolic VM, network
//! simulation, Contiki-like node OS).
//!
//! This facade crate re-exports the whole workspace; depend on it for
//! everything, or on the individual `sde-*` crates for a subset.
//!
//! ## Quick start
//!
//! ```
//! use sde::prelude::*;
//!
//! // The paper's evaluation workload on a 3×3 grid with symbolic packet
//! // drops, run under all three state mapping algorithms.
//! let topology = Topology::grid(3, 3);
//! let cfg = CollectConfig::paper_grid(3, 3);
//! let failures = FailureConfig::new()
//!     .drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
//! let programs = sde::os::apps::collect::programs(&topology, &cfg);
//! let scenario = Scenario::new(topology, programs)
//!     .with_failures(failures)
//!     .with_duration_ms(3000);
//!
//! let sds = run(&scenario, Algorithm::Sds);
//! let cow = run(&scenario, Algorithm::Cow);
//! assert!(sds.total_states <= cow.total_states, "SDS never does worse");
//! assert_eq!(sds.duplicate_states, 0, "the §III-D non-duplication theorem");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`trace`] | structured event tracing (sinks, exporters, lineage) |
//! | [`pds`] | persistent data structures (O(1)-clone states) |
//! | [`symbolic`] | expressions, path conditions, bounded solver |
//! | [`vm`] | symbolic bytecode VM (the KLEE substitute) |
//! | [`net`] | topologies, packets, event queue, failure configs |
//! | [`os`] | Contiki/Rime-like node runtime and applications |
//! | [`core`] | SDE engine + COB/COW/SDS + test generation + §III-E model |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sde_core as core;
pub use sde_net as net;
pub use sde_os as os;
pub use sde_pds as pds;
pub use sde_symbolic as symbolic;
pub use sde_trace as trace;
pub use sde_vm as vm;

/// The names almost every user needs.
pub mod prelude {
    pub use sde_core::{
        run, run_parallel, Algorithm, Budget, Checker, Engine, EngineSnapshot, MinimizeReport,
        Minimizer, NodeView, ParallelStats, RunOutcome, RunReport, Scenario, SdeState,
        SnapshotError, StateId, TimeSeries, Violation,
    };
    pub use sde_net::{FailureConfig, FaultPlan, NodeId, Topology};
    pub use sde_os::apps::collect::CollectConfig;
    pub use sde_os::apps::flood::FloodConfig;
    pub use sde_os::apps::hello::HelloConfig;
    pub use sde_os::apps::pingpong::PingPongConfig;
    pub use sde_os::apps::sense::SenseConfig;
    pub use sde_os::apps::token::TokenConfig;
    pub use sde_symbolic::{Expr, Model, PathCondition, Solver, SymbolTable, Width};
    pub use sde_trace::{Lineage, RingSink, TraceEvent, TraceSink, TraceSummary};
    pub use sde_vm::{Program, ProgramBuilder, VmState};
}
