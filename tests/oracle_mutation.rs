//! Mutation self-test for the conformance oracle: a harness that cannot
//! fail its subject proves nothing, so corrupt exactly one mapping
//! decision and demand the oracle flags the divergence (DESIGN.md §9).
//!
//! [`MutantMapper`] wraps a real mapper and forwards everything except
//! one deliberate lie:
//!
//! * [`Mutation::DropDscenario`] suppresses one dscenario during the
//!   §IV-C explosion — the oracle must report its outcome as *missing*
//!   (a mapper losing coverage is exactly the unsoundness the oracle
//!   exists to catch).
//! * [`Mutation::StealReceiver`] removes one receiver from one mapped
//!   transmission — the exploration itself diverges from the ground
//!   truth, so the verdict must be dirty.

#[path = "common/faults.rs"]
mod faults;
#[path = "common/line.rs"]
mod line;

use faults::{fault_preset, FAULT_AXES};
use line::line_collect;
use sde::core::oracle::{
    conformance_against, ground_truth, Domains, GroundTruth, Mutation, OracleConfig,
};
use sde::prelude::*;
use std::collections::BTreeSet;

fn scenario() -> Scenario {
    line_collect(3, &[0, 1], 2, false)
}

#[test]
fn unmutated_baseline_is_clean() {
    // The control arm: without a mutation the very same harness must
    // report a clean, exhaustive verdict for every algorithm — otherwise
    // the dirty verdicts below would mean nothing.
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    assert!(truth.exhaustive());
    assert!(
        truth.outcomes.len() >= 4,
        "{} outcomes",
        truth.outcomes.len()
    );
    for alg in Algorithm::ALL {
        let report = conformance_against(&truth, &scenario, alg, None, &cfg);
        assert!(
            report.is_clean() && report.exhaustive(),
            "baseline {}: {}",
            alg.name(),
            report.summary()
        );
    }
}

#[test]
fn dropping_a_dscenario_is_flagged_as_missing() {
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    for alg in Algorithm::ALL {
        let report = conformance_against(
            &truth,
            &scenario,
            alg,
            Some(Mutation::DropDscenario(0)),
            &cfg,
        );
        assert!(
            !report.missing.is_empty(),
            "{}: suppressing a dscenario must surface as a missing outcome: {}",
            alg.name(),
            report.summary()
        );
        assert!(!report.is_clean(), "{}: verdict must be dirty", alg.name());
    }
}

#[test]
fn every_dscenario_position_matters() {
    // Not just the first: suppressing *any* of SDS's dscenarios must be
    // caught — SDS enumerates each dscenario exactly once (§III-D), so
    // every position carries unique coverage.
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    let baseline = conformance_against(&truth, &scenario, Algorithm::Sds, None, &cfg);
    assert!(baseline.is_clean());
    for n in 0..baseline.cases {
        let report = conformance_against(
            &truth,
            &scenario,
            Algorithm::Sds,
            Some(Mutation::DropDscenario(n)),
            &cfg,
        );
        assert!(
            !report.is_clean(),
            "SDS: dropping dscenario {n} of {} went unnoticed: {}",
            baseline.cases,
            report.summary()
        );
    }
}

// ---------------------------------------------------------------------------
// fault-axis kill coverage (DESIGN.md §11 × §9)
// ---------------------------------------------------------------------------

/// Oracle config for the fault-axis sweep: the corruption axis carries
/// an 8-bit value symbol, so cap its enumeration domain — four values
/// are plenty to move the outcome set, and the sweep stays fast.
fn axis_cfg() -> OracleConfig {
    OracleConfig {
        domains: Domains::new().with_max_domain(4),
        ..OracleConfig::default()
    }
}

fn outcome_set(truth: &GroundTruth) -> BTreeSet<sde::core::oracle::ScenarioOutcome> {
    truth.outcomes.keys().cloned().collect()
}

#[test]
fn every_fault_axis_changes_the_canonical_outcome_set() {
    // Kill-the-mutant coverage for the fault subsystem itself: an axis
    // wired to nothing would leave the ground truth unchanged, so each
    // of partition/latency/corrupt/crashrec must *independently* move
    // the canonical outcome set on line3.
    let base = scenario();
    let cfg = axis_cfg();
    let baseline = outcome_set(&ground_truth(&base, &cfg));
    assert!(!baseline.is_empty());
    let mut per_axis = Vec::new();
    for axis in FAULT_AXES {
        let faulted = base.clone().with_faults(fault_preset(axis, &base));
        let truth = ground_truth(&faulted, &cfg);
        let outcomes = outcome_set(&truth);
        assert_ne!(
            outcomes,
            baseline,
            "{axis}: the axis must change the canonical outcome set \
             ({} outcomes either way)",
            baseline.len()
        );
        assert!(
            outcomes.len() > baseline.len(),
            "{axis}: a new symbolic choice must widen the outcome set, \
             got {} vs baseline {}",
            outcomes.len(),
            baseline.len()
        );
        per_axis.push((axis, outcomes));
    }
    // And the axes are pairwise distinguishable — no two collapse into
    // the same behavior.
    for i in 0..per_axis.len() {
        for j in i + 1..per_axis.len() {
            assert_ne!(
                per_axis[i].1, per_axis[j].1,
                "{} and {} produced identical outcome sets",
                per_axis[i].0, per_axis[j].0
            );
        }
    }
}

#[test]
fn mutants_stay_killed_under_every_fault_axis() {
    // The oracle's kill-power must survive the larger fault space: with
    // each axis active, suppressing a dscenario is still caught.
    let base = scenario();
    let cfg = axis_cfg();
    for axis in FAULT_AXES {
        let faulted = base.clone().with_faults(fault_preset(axis, &base));
        let truth = ground_truth(&faulted, &cfg);
        let clean = conformance_against(&truth, &faulted, Algorithm::Sds, None, &cfg);
        assert!(
            clean.is_clean(),
            "{axis}: unmutated control arm must stay clean: {}",
            clean.summary()
        );
        let report = conformance_against(
            &truth,
            &faulted,
            Algorithm::Sds,
            Some(Mutation::DropDscenario(0)),
            &cfg,
        );
        assert!(
            !report.is_clean(),
            "{axis}: dropping a dscenario went unnoticed under the axis: {}",
            report.summary()
        );
    }
}

#[test]
fn stealing_a_receiver_is_flagged() {
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    for alg in Algorithm::ALL {
        let report = conformance_against(
            &truth,
            &scenario,
            alg,
            Some(Mutation::StealReceiver(0)),
            &cfg,
        );
        assert!(
            !report.is_clean(),
            "{}: corrupting a delivery mapping must dirty the verdict: {}",
            alg.name(),
            report.summary()
        );
    }
}
