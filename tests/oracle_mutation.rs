//! Mutation self-test for the conformance oracle: a harness that cannot
//! fail its subject proves nothing, so corrupt exactly one mapping
//! decision and demand the oracle flags the divergence (DESIGN.md §9).
//!
//! [`MutantMapper`] wraps a real mapper and forwards everything except
//! one deliberate lie:
//!
//! * [`Mutation::DropDscenario`] suppresses one dscenario during the
//!   §IV-C explosion — the oracle must report its outcome as *missing*
//!   (a mapper losing coverage is exactly the unsoundness the oracle
//!   exists to catch).
//! * [`Mutation::StealReceiver`] removes one receiver from one mapped
//!   transmission — the exploration itself diverges from the ground
//!   truth, so the verdict must be dirty.

#[path = "common/line.rs"]
mod line;

use line::line_collect;
use sde::core::oracle::{conformance_against, ground_truth, Mutation, OracleConfig};
use sde::prelude::*;

fn scenario() -> Scenario {
    line_collect(3, &[0, 1], 2, false)
}

#[test]
fn unmutated_baseline_is_clean() {
    // The control arm: without a mutation the very same harness must
    // report a clean, exhaustive verdict for every algorithm — otherwise
    // the dirty verdicts below would mean nothing.
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    assert!(truth.exhaustive());
    assert!(
        truth.outcomes.len() >= 4,
        "{} outcomes",
        truth.outcomes.len()
    );
    for alg in Algorithm::ALL {
        let report = conformance_against(&truth, &scenario, alg, None, &cfg);
        assert!(
            report.is_clean() && report.exhaustive(),
            "baseline {}: {}",
            alg.name(),
            report.summary()
        );
    }
}

#[test]
fn dropping_a_dscenario_is_flagged_as_missing() {
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    for alg in Algorithm::ALL {
        let report = conformance_against(
            &truth,
            &scenario,
            alg,
            Some(Mutation::DropDscenario(0)),
            &cfg,
        );
        assert!(
            !report.missing.is_empty(),
            "{}: suppressing a dscenario must surface as a missing outcome: {}",
            alg.name(),
            report.summary()
        );
        assert!(!report.is_clean(), "{}: verdict must be dirty", alg.name());
    }
}

#[test]
fn every_dscenario_position_matters() {
    // Not just the first: suppressing *any* of SDS's dscenarios must be
    // caught — SDS enumerates each dscenario exactly once (§III-D), so
    // every position carries unique coverage.
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    let baseline = conformance_against(&truth, &scenario, Algorithm::Sds, None, &cfg);
    assert!(baseline.is_clean());
    for n in 0..baseline.cases {
        let report = conformance_against(
            &truth,
            &scenario,
            Algorithm::Sds,
            Some(Mutation::DropDscenario(n)),
            &cfg,
        );
        assert!(
            !report.is_clean(),
            "SDS: dropping dscenario {n} of {} went unnoticed: {}",
            baseline.cases,
            report.summary()
        );
    }
}

#[test]
fn stealing_a_receiver_is_flagged() {
    let scenario = scenario();
    let cfg = OracleConfig::default();
    let truth = ground_truth(&scenario, &cfg);
    for alg in Algorithm::ALL {
        let report = conformance_against(
            &truth,
            &scenario,
            alg,
            Some(Mutation::StealReceiver(0)),
            &cfg,
        );
        assert!(
            !report.is_clean(),
            "{}: corrupting a delivery mapping must dirty the verdict: {}",
            alg.name(),
            report.summary()
        );
    }
}
