//! Trace determinism: the deterministic JSONL export of a run is
//! byte-identical across repeated runs and — for the parallel engine —
//! across worker counts (events from speculative workers are buffered
//! per job and merged in job submission order; the authoritative pass is
//! the only emitter of engine events).
//!
//! Also pins the per-algorithm mapping signature the trace exposes: COB
//! forks peers on a local branch (`MapBranch.forked` non-empty), COW and
//! SDS fork only on transmission (`MapSend.forked`).

#[path = "common/line.rs"]
mod line;
#[path = "common/seeded.rs"]
mod seeded;

use sde::prelude::*;
use sde::trace::{to_jsonl, RingSink, TraceEvent, TraceSink};
use seeded::scenario_from_seed;
use std::sync::Arc;

/// Runs `scenario` with a recorder attached (sequentially when `workers`
/// is `None`) and returns the deterministic JSONL rendering.
fn traced_jsonl(scenario: &Scenario, algorithm: Algorithm, workers: Option<usize>) -> String {
    let sink = Arc::new(RingSink::default());
    let engine = Engine::new(scenario.clone(), algorithm)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    match workers {
        None => engine.run(),
        Some(w) => engine.run_parallel(w),
    };
    assert_eq!(sink.dropped(), 0, "trace ring must not evict in tests");
    to_jsonl(&sink.take(), true)
}

/// Like [`traced_jsonl`] but also returns the parsed events.
fn traced_events(scenario: &Scenario, algorithm: Algorithm) -> Vec<TraceEvent> {
    let sink = Arc::new(RingSink::default());
    Engine::new(scenario.clone(), algorithm)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>)
        .run();
    sink.take().into_iter().map(|te| te.ev).collect()
}

#[test]
fn sequential_traces_are_reproducible() {
    for i in 0..4u64 {
        let seed = 0x7ace ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (label, scenario) = scenario_from_seed(seed);
        for alg in Algorithm::ALL {
            let first = traced_jsonl(&scenario, alg, None);
            let second = traced_jsonl(&scenario, alg, None);
            assert!(!first.is_empty(), "[{label}] {alg} produced an empty trace");
            assert_eq!(
                first, second,
                "[{label}] {alg} sequential trace not reproducible"
            );
        }
    }
}

#[test]
fn parallel_traces_are_identical_across_worker_counts() {
    for i in 0..4u64 {
        let seed = 0xd00d ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (label, scenario) = scenario_from_seed(seed);
        for alg in Algorithm::ALL {
            let baseline = traced_jsonl(&scenario, alg, Some(1));
            for workers in [2usize, 4] {
                let trace = traced_jsonl(&scenario, alg, Some(workers));
                assert_eq!(
                    baseline, trace,
                    "[{label}] {alg} parallel trace diverged at {workers} workers"
                );
            }
            // Repeating the same worker count must also be byte-stable.
            assert_eq!(
                baseline,
                traced_jsonl(&scenario, alg, Some(1)),
                "[{label}] {alg} parallel trace not reproducible"
            );
        }
    }
}

/// A line with a symbolic drop in the middle: every algorithm forks at
/// the drop, and the mapping-decision events show *where* each algorithm
/// puts its consistency forks.
fn drop_scenario() -> Scenario {
    line::line_collect(3, &[1], 2, false)
}

#[test]
fn cob_forks_peers_on_branch() {
    let events = traced_events(&drop_scenario(), Algorithm::Cob);
    let map_branches: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::MapBranch { .. }))
        .collect();
    assert!(!map_branches.is_empty(), "COB run must branch at the drop");
    // COB clones every peer on every branch: with 3 nodes, each branch
    // forks the 2 other nodes' states.
    assert!(
        map_branches
            .iter()
            .all(|e| matches!(e, TraceEvent::MapBranch { forked, .. } if forked.len() == 2)),
        "COB must fork both peers on every branch: {map_branches:?}"
    );
    // ... and never on transmission.
    assert!(
        events
            .iter()
            .all(|e| !matches!(e, TraceEvent::MapSend { forked, .. } if !forked.is_empty())),
        "COB must not fork on sends"
    );
}

#[test]
fn cow_and_sds_fork_only_on_transmission() {
    for alg in [Algorithm::Cow, Algorithm::Sds] {
        let events = traced_events(&drop_scenario(), alg);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::MapBranch { .. })),
            "{alg}: the drop must reach the mapper as a branch"
        );
        assert!(
            events
                .iter()
                .all(|e| !matches!(e, TraceEvent::MapBranch { forked, .. } if !forked.is_empty())),
            "{alg} must not fork peers on a branch"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::MapSend { forked, .. } if !forked.is_empty())),
            "{alg} must fork on some conflicting transmission"
        );
    }
}
