//! Differential and invariant tests for the extended fault-injection
//! subsystem (DESIGN.md §11): partitions, symbolic link latency, payload
//! corruption, and crash-recovery persistence.
//!
//! Three layers of evidence:
//!
//! * **Determinism** — for every fault axis, `run_parallel` at any
//!   worker count is bit-identical to the sequential run
//!   ([`RunReport::equivalence_key`]), dedup is canonically invisible,
//!   and a checkpoint taken *mid-partition* resumes to the same run.
//! * **Semantics** — traced runs prove the mechanisms do what they
//!   claim: no delivery crosses an active cut, healing restores
//!   reachability, deferred deliveries arrive exactly `extra_ms` late,
//!   and the persistent window survives a crash while volatile state
//!   resets.
//! * **Randomization** — proptest sweeps the same invariants over
//!   random topology sizes and axis choices.

#[path = "common/faults.rs"]
mod faults;
#[path = "common/fingerprints.rs"]
mod fingerprints;

use fingerprints::{dscenario_fingerprints, path_sets};
use proptest::prelude::*;
use sde::prelude::*;
use sde_core::Engine;
use sde_os::apps::collect::{self, CollectConfig};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Faultless collect base: `packets` packets from the far end to node 0.
fn collect_base(topology: Topology, packets: u16) -> Scenario {
    let k = topology.len() as u16;
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: packets,
        strict_sink: false,
    };
    let programs = collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

/// The matrix: every fault axis alone, on a line and on the 2×2 grid.
fn fault_matrix() -> Vec<(String, Scenario)> {
    let mut out = Vec::new();
    for (topo_name, topology) in [
        ("line4", Topology::line(4)),
        ("grid2x2", Topology::grid(2, 2)),
    ] {
        let base = collect_base(topology, 1);
        for (axis, plan) in faults::fault_presets(&base) {
            out.push((
                format!("{topo_name}-{axis}"),
                base.clone().with_faults(plan),
            ));
        }
    }
    out
}

// --- determinism: worker counts --------------------------------------------

#[test]
fn fault_axes_are_bit_identical_across_worker_counts() {
    for (label, scenario) in fault_matrix() {
        for alg in Algorithm::ALL {
            let seq = Engine::new(scenario.clone(), alg).run();
            let seq_key = seq.equivalence_key();
            for workers in [1usize, 2, 4] {
                let par = Engine::new(scenario.clone(), alg).run_parallel(workers);
                assert_eq!(
                    par.equivalence_key(),
                    seq_key,
                    "[{label}] {alg} diverged at {workers} workers"
                );
            }
        }
    }
}

// --- determinism: dedup on/off ---------------------------------------------

/// Canonical, symbol-id-free fingerprint (dedup replays clone survivor
/// expressions, so raw digests legitimately differ; see
/// `dedup_equivalence.rs`).
#[derive(Debug, PartialEq, Eq)]
struct Canonical {
    paths: Vec<(NodeId, Vec<u64>)>,
    dscenarios: BTreeSet<Vec<(u16, u64)>>,
    total_states: usize,
    live_states: usize,
    events: u64,
    packets: u64,
    groups: usize,
    aborted: bool,
}

fn canonical_run(scenario: &Scenario, alg: Algorithm, dedup: bool) -> (Canonical, RunReport) {
    let mut engine = Engine::new(scenario.clone(), alg).with_dedup(dedup);
    engine.run_in_place();
    canonical_finish(engine)
}

/// Canonicalizes a finished engine and consumes it into its report.
fn canonical_finish(engine: Engine) -> (Canonical, RunReport) {
    let paths = path_sets(&engine);
    let dscenarios = dscenario_fingerprints(&engine);
    let report = engine.into_report();
    let canonical = Canonical {
        paths,
        dscenarios,
        total_states: report.total_states,
        live_states: report.live_states,
        events: report.events,
        packets: report.packets,
        groups: report.groups,
        aborted: report.aborted,
    };
    (canonical, report)
}

#[test]
fn fault_axes_are_canonically_invisible_to_dedup() {
    for (label, scenario) in fault_matrix() {
        for alg in Algorithm::ALL {
            let (off, off_report) = canonical_run(&scenario, alg, false);
            let (on, on_report) = canonical_run(&scenario, alg, true);
            assert_eq!(
                on, off,
                "[{label}] {alg}: dedup changed what the fault run explored"
            );
            assert!(
                on_report.states_executed <= off_report.states_executed,
                "[{label}] {alg}: dedup executed {} states, plain run {}",
                on_report.states_executed,
                off_report.states_executed
            );
        }
    }
}

// --- determinism: checkpoint/resume mid-partition --------------------------

#[test]
fn checkpoint_resume_mid_partition_matches_straight_run() {
    // Pause every 5 events with a full serialize/deserialize round trip:
    // several pauses land while partition lineages hold a live
    // `partition_until` deadline and un-spent fault budgets, all of
    // which the v3 codec must carry.
    for (label, scenario) in fault_matrix() {
        for alg in Algorithm::ALL {
            let straight = Engine::new(scenario.clone(), alg).run();
            let mut engine = Engine::new(scenario.clone(), alg);
            let mut pauses = 0usize;
            while engine.run_until(Budget::events(5)) != RunOutcome::Complete {
                let bytes = engine.snapshot().to_bytes();
                let snap = EngineSnapshot::from_bytes(&bytes).expect("snapshot bytes must decode");
                engine = Engine::resume(scenario.clone(), &snap).expect("snapshot must resume");
                pauses += 1;
            }
            assert!(pauses > 0, "[{label}] {alg}: run too small to pause");
            assert_eq!(
                engine.into_report().equivalence_key(),
                straight.equivalence_key(),
                "[{label}] {alg} diverged across {pauses} mid-fault pauses"
            );
        }
    }
}

/// Combined stress: a fault plan *and* dedup *and* checkpoint/resume
/// *and* a parallel engine — both the speculative and the sharded mode —
/// all at once. Resumed runs restart with a cold memo index, so the
/// comparison is canonical (what was explored), mirroring
/// `dedup_equivalence.rs`.
#[test]
fn interrupted_parallel_dedup_fault_runs_match_straight_runs() {
    let base = collect_base(Topology::line(4), 1);
    for (axis, plan) in faults::fault_presets(&base) {
        let scenario = base.clone().with_faults(plan);
        for alg in Algorithm::ALL {
            let (straight, _) = canonical_run(&scenario, alg, true);
            for sharded in [false, true] {
                let mode = if sharded { "shard" } else { "spec" };
                let mut engine = Engine::new(scenario.clone(), alg).with_dedup(true);
                let mut pauses = 0usize;
                loop {
                    let outcome = if sharded {
                        engine.run_until_sharded(2, Budget::events(7))
                    } else {
                        engine.run_until_parallel(2, Budget::events(7))
                    };
                    if outcome == RunOutcome::Complete {
                        break;
                    }
                    let snap = if pauses < 2 {
                        let bytes = engine.snapshot().to_bytes();
                        EngineSnapshot::from_bytes(&bytes).expect("snapshot bytes must decode")
                    } else {
                        engine.snapshot()
                    };
                    engine = Engine::resume(scenario.clone(), &snap).expect("snapshot must resume");
                    assert!(
                        engine.dedup_enabled(),
                        "[{axis}] {alg}/{mode}: resume dropped the dedup flag"
                    );
                    pauses += 1;
                }
                assert!(pauses > 0, "[{axis}] {alg}/{mode}: run too small to pause");
                let (interrupted, _) = canonical_finish(engine);
                assert_eq!(
                    interrupted, straight,
                    "[{axis}] {alg}/{mode}: interrupted parallel dedup fault \
                     run diverged after {pauses} pauses"
                );
            }
        }
    }
}

#[test]
fn resume_under_a_different_fault_plan_is_refused() {
    let base = collect_base(Topology::line(3), 1);
    let scenario = base
        .clone()
        .with_faults(faults::fault_preset("partition", &base));
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    let outcome = engine.run_until(Budget::events(3));
    assert_eq!(outcome, RunOutcome::Paused, "run too small to pause");
    let snap = engine.snapshot();

    // Same workload, different fault plan: the stored budgets and
    // partition deadlines would silently change meaning.
    let other = base
        .clone()
        .with_faults(faults::fault_preset("latency", &base));
    match Engine::resume(other, &snap) {
        Err(SnapshotError::ScenarioMismatch(what)) => assert_eq!(what, "fault_plan"),
        other => panic!("expected a fault_plan mismatch, got {other:?}"),
    }
    // The faultless base is refused too.
    assert!(matches!(
        Engine::resume(base, &snap),
        Err(SnapshotError::ScenarioMismatch("fault_plan"))
    ));
    // The matching plan resumes fine.
    let mut resumed = Engine::resume(scenario, &snap).expect("matching plan must resume");
    while resumed.run_until(Budget::events(64)) != RunOutcome::Complete {}
}

// --- semantics: traced invariants ------------------------------------------

/// Runs `scenario` serially with a trace sink and returns the events.
fn traced_run(scenario: &Scenario, alg: Algorithm) -> Vec<TraceEvent> {
    let sink = Arc::new(RingSink::default());
    Engine::new(scenario.clone(), alg)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>)
        .run();
    assert_eq!(sink.dropped(), 0, "trace ring must not evict in tests");
    sink.take().into_iter().map(|t| t.ev).collect()
}

/// Scans a serial trace and asserts the partition contract: while a
/// lineage's cut is active every cut-crossing delivery is swallowed
/// (`PartitionDrop`), no `Deliver` reaches the partitioned node before
/// its heal deadline, and — when `expect_heal` — at least one lineage
/// delivers to the partitioned node *after* its deadline (healing
/// restores reachability).
fn check_partition_trace(label: &str, events: &[TraceEvent], expect_heal: bool) {
    // `partition_until` is inherited on fork, so propagate each state's
    // deadline to its descendants as the (serially ordered) trace grows.
    let mut until: HashMap<u64, u64> = HashMap::new();
    let mut now = 0u64;
    let mut drops = 0usize;
    let mut healed_deliveries = 0usize;
    for ev in events {
        match ev {
            TraceEvent::Dispatch { time, .. } => now = *time,
            TraceEvent::Fork { parent, child, .. } => {
                if let Some(&u) = until.get(parent) {
                    until.insert(*child, u);
                }
            }
            TraceEvent::PartitionDrop {
                state,
                until: deadline,
                ..
            } => {
                drops += 1;
                assert!(
                    now < *deadline,
                    "{label}: partition swallowed a delivery at {now} ≥ heal {deadline}"
                );
                until.insert(*state, *deadline);
            }
            TraceEvent::Deliver { state, node: 0, .. } => {
                if let Some(&u) = until.get(state) {
                    assert!(
                        now >= u,
                        "{label}: state {state} received across an active cut at {now} < {u}"
                    );
                    healed_deliveries += 1;
                }
            }
            _ => {}
        }
    }
    assert!(drops > 0, "{label}: the partition axis never fired");
    if expect_heal {
        assert!(
            healed_deliveries > 0,
            "{label}: no delivery after any heal deadline — healing never \
             restored reachability"
        );
    }
}

#[test]
fn partition_heals_and_never_leaks_deliveries() {
    // 3 packets on a 3-node line: heal candidates land between the 2nd
    // and 3rd delivery, so partitioned lineages observe both the active
    // cut (drops) and the healed network (a late delivery).
    let base = collect_base(Topology::line(3), 3);
    let scenario = base
        .clone()
        .with_faults(faults::fault_preset("partition", &base));
    for alg in Algorithm::ALL {
        let events = traced_run(&scenario, alg);
        check_partition_trace(&format!("line3-partition/{alg}"), &events, true);
    }
}

/// Scans a serial trace and asserts the latency contract: every
/// `Send → Deliver` delta is exactly the base link latency, except
/// deliveries to the latency node (node 0), which may additionally be
/// `extra_ms` late — nothing earlier, nothing in between, nothing later.
fn check_latency_trace(label: &str, events: &[TraceEvent], base_ms: u64, extra_ms: u64) {
    let mut sent: HashMap<u64, u64> = HashMap::new();
    let mut now = 0u64;
    let mut on_time = 0usize;
    let mut deferred = 0usize;
    for ev in events {
        match ev {
            TraceEvent::Dispatch { time, .. } => now = *time,
            TraceEvent::Send { packet, .. } => {
                sent.entry(*packet).or_insert(now);
            }
            TraceEvent::Deliver { node, packet, .. } => {
                let t0 = sent[packet];
                let delta = now - t0;
                if delta == base_ms {
                    on_time += 1;
                } else {
                    assert_eq!(
                        delta,
                        base_ms + extra_ms,
                        "{label}: packet {packet} to node {node} took {delta} ms \
                         (allowed: {base_ms} or {})",
                        base_ms + extra_ms
                    );
                    assert_eq!(
                        *node, 0,
                        "{label}: only the latency node may see deferred deliveries"
                    );
                    deferred += 1;
                }
            }
            _ => {}
        }
    }
    assert!(on_time > 0, "{label}: no on-time delivery at all");
    assert!(
        deferred > 0,
        "{label}: the latency axis never deferred a delivery"
    );
}

#[test]
fn deferred_deliveries_respect_the_latency_bound() {
    let base = collect_base(Topology::line(3), 2);
    let scenario = base
        .clone()
        .with_faults(faults::fault_preset("latency", &base));
    for alg in Algorithm::ALL {
        let events = traced_run(&scenario, alg);
        check_latency_trace(
            &format!("line3-latency/{alg}"),
            &events,
            scenario.link_latency_ms,
            scenario.faults.latency_extra_ms(),
        );
    }
}

/// Reads the (concrete) low byte a persist-app counter holds in `state`.
fn counter(state: &SdeState, addr: u32) -> u64 {
    state
        .vm
        .memory_byte(addr)
        .as_const()
        .expect("persist counters are concrete")
}

#[test]
fn persistent_window_survives_crash_while_volatile_resets() {
    use sde::os::apps::persist::{self, PersistConfig};
    use sde::os::layout;

    let topology = Topology::line(2);
    let cfg = PersistConfig {
        source: NodeId(1),
        ..PersistConfig::default()
    };
    let programs = persist::programs(&topology, &cfg);
    let base = Scenario::new(topology, programs)
        .with_duration_ms(1000)
        .with_history_tracking(true);
    let scenario = base
        .clone()
        .with_faults(faults::fault_preset("crashrec", &base));

    for alg in Algorithm::ALL {
        let mut engine = Engine::new(scenario.clone(), alg);
        engine.run_in_place();
        let mut crashed = 0usize;
        let mut crashed_with_history = 0usize;
        for s in engine.states().filter(|s| s.node == NodeId(0)) {
            let boots = counter(s, layout::BOOT_COUNT);
            match boots {
                1 => {} // never crashed
                2 => {
                    crashed += 1;
                    // Volatile state reset: the receive counter restarts
                    // from zero, and on_boot's volatile marker was re-set
                    // by the post-crash boot.
                    assert_eq!(
                        counter(s, layout::SEQ),
                        1,
                        "{alg}/{}: on_boot must run after the crash",
                        s.id
                    );
                    // Persistent state survived: the sequence high-water
                    // mark may only come from *pre-crash* receives, since
                    // the crashing branch misses its packet. A state that
                    // crashed on the 2nd delivery proves survival.
                    let high = counter(s, layout::PERSIST_SEQ);
                    let received = counter(s, layout::RECEIVED);
                    assert!(
                        high >= received,
                        "{alg}/{}: persistent high-water {high} lost ground to \
                         post-crash receives {received}",
                        s.id
                    );
                    if high > received {
                        crashed_with_history += 1;
                    }
                }
                n => panic!("{alg}/{}: impossible boot count {n} (budget is 1)", s.id),
            }
        }
        assert!(crashed > 0, "{alg}: the crashrec axis never fired");
        assert!(
            crashed_with_history > 0,
            "{alg}: no state kept a pre-crash persistent value — the \
             persistence window did not observably survive"
        );
    }
}

// --- randomized sweeps ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topology × axis: parallel runs stay bit-identical and the
    /// mapper invariants hold with the fault subsystem active.
    #[test]
    fn random_fault_scenarios_stay_deterministic(
        k in 3u16..5,
        ring in any::<bool>(),
        axis_idx in 0usize..4,
        workers in 2usize..5,
    ) {
        let topology = if ring { Topology::ring(k) } else { Topology::line(k) };
        let base = collect_base(topology, 1);
        let axis = faults::FAULT_AXES[axis_idx];
        let scenario = base.clone().with_faults(faults::fault_preset(axis, &base));
        for alg in Algorithm::ALL {
            let mut engine = Engine::new(scenario.clone(), alg);
            engine.run_in_place();
            prop_assert!(
                engine.mapper().check_invariants().is_none(),
                "{axis}/{alg}: {:?}", engine.mapper().check_invariants()
            );
            let seq_key = engine.into_report().equivalence_key();
            let par = Engine::new(scenario.clone(), alg).run_parallel(workers);
            prop_assert_eq!(
                par.equivalence_key(), seq_key,
                "{}/{} diverged at {} workers", axis, alg, workers
            );
        }
    }

    /// Random line lengths and packet counts: the latency bound holds on
    /// every delivery of every lineage.
    #[test]
    fn latency_bound_holds_on_random_lines(k in 3u16..5, packets in 1u16..3) {
        let base = collect_base(Topology::line(k), packets);
        let scenario = base.clone().with_faults(faults::fault_preset("latency", &base));
        let events = traced_run(&scenario, Algorithm::Sds);
        check_latency_trace(
            &format!("line{k}-{packets}pkt"),
            &events,
            scenario.link_latency_ms,
            scenario.faults.latency_extra_ms(),
        );
    }

    /// Random partition scenarios: no delivery ever crosses an active
    /// cut (heal-side reachability is pinned by the deterministic test —
    /// short random runs may legitimately end before any heal deadline).
    #[test]
    fn no_delivery_crosses_an_active_cut_on_random_lines(k in 3u16..5, packets in 1u16..4) {
        let base = collect_base(Topology::line(k), packets);
        let scenario = base.clone().with_faults(faults::fault_preset("partition", &base));
        let events = traced_run(&scenario, Algorithm::Sds);
        check_partition_trace(&format!("line{k}-{packets}pkt"), &events, false);
    }
}
