//! Engine-level invariants from the paper:
//!
//! * §II-B / §III-B — states within one dstate/dscenario are pairwise
//!   conflict-free (their communication histories agree);
//! * §III-D — SDS never produces duplicate states;
//! * dstates always hold at least one state per node.

#[path = "common/grid.rs"]
mod grid;
#[path = "common/line.rs"]
mod line;
#[path = "common/mesh.rs"]
mod mesh;
#[path = "common/ring.rs"]
mod ring;

use grid::grid_collect;
use line::line_collect;
use mesh::mesh_flood;
use ring::ring_hello;
use sde::prelude::*;
use sde_core::Engine;

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        ("line4", line_collect(4, &[2], 2, false)),
        ("line5-two-drops", line_collect(5, &[1, 3], 2, false)),
        ("grid3x3", grid_collect(3, 3, 5000, false)),
        ("mesh3-flood", mesh_flood(3, 2)),
        ("ring5-hello", ring_hello(5)),
    ]
}

#[test]
fn dscenario_members_are_conflict_free() {
    for (label, scenario) in scenarios() {
        for alg in Algorithm::ALL {
            let mut engine = Engine::new(scenario.clone(), alg);
            engine.run_in_place();
            let mut checked = 0usize;
            for dscenario in engine.mapper().dscenarios() {
                let members: Vec<_> = dscenario
                    .iter()
                    .filter_map(|id| engine.state(*id))
                    .collect();
                for (i, a) in members.iter().enumerate() {
                    for b in members.iter().skip(i + 1) {
                        let conflict = a
                            .history
                            .direct_conflict(a.node, &b.history, b.node)
                            .expect("history tracking enabled");
                        assert!(
                            !conflict,
                            "{label}/{alg}: {} and {} conflict within a dscenario",
                            a.id, b.id
                        );
                        checked += 1;
                    }
                }
            }
            assert!(checked > 0, "{label}/{alg}: nothing checked");
        }
    }
}

#[test]
fn same_node_states_in_one_dstate_share_history() {
    // Stronger than pairwise conflict-freedom: same-node states grouped
    // together must have *identical* histories (they only diverged in
    // local constraints).
    for (label, scenario) in scenarios() {
        for alg in [Algorithm::Cow, Algorithm::Sds] {
            let mut engine = Engine::new(scenario.clone(), alg);
            engine.run_in_place();
            for dscenario in engine.mapper().dscenarios() {
                use std::collections::BTreeMap;
                let mut per_node: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
                for id in &dscenario {
                    let s = engine.state(*id).expect("resident");
                    per_node.entry(s.node).or_default().push(s.history.digest());
                }
                // One state per node per dscenario by construction; the
                // interesting case is across the enumerated combinations,
                // which the fingerprint comparison in
                // algorithm_equivalence covers. Here, verify that the
                // dscenario is complete.
                assert_eq!(
                    per_node.len(),
                    scenario.node_count(),
                    "{label}/{alg:?}: dscenario misses a node"
                );
                assert!(per_node.values().all(|v| v.len() == 1));
            }
        }
    }
}

#[test]
fn sds_is_duplication_free_everywhere() {
    for (label, scenario) in scenarios() {
        let report = run(&scenario, Algorithm::Sds);
        assert_eq!(
            report.duplicate_states, 0,
            "{label}: SDS produced duplicates (violates §III-D)"
        );
    }
}

#[test]
fn sds_duplicate_freedom_is_exact_not_just_digest() {
    // Digests could collide; cross-check with exact configuration
    // comparison on a scenario known to stress the mapper.
    let mut engine = Engine::new(grid_collect(3, 3, 5000, false), Algorithm::Sds);
    engine.run_in_place();
    let states: Vec<_> = engine.states().collect();
    for (i, a) in states.iter().enumerate() {
        for b in states.iter().skip(i + 1) {
            if a.node == b.node && a.history == b.history {
                assert!(
                    !a.vm.config_eq(&b.vm),
                    "states {} and {} are exact duplicates",
                    a.id,
                    b.id
                );
            }
        }
    }
}

#[test]
fn mapper_invariants_hold_after_every_run() {
    for (label, scenario) in scenarios() {
        for alg in Algorithm::ALL {
            let mut engine = Engine::new(scenario.clone(), alg);
            engine.run_in_place();
            assert!(
                engine.mapper().check_invariants().is_none(),
                "{label}/{alg}: {:?}",
                engine.mapper().check_invariants()
            );
        }
    }
}

#[test]
fn cow_duplicates_are_exactly_the_bystander_copies() {
    // COW's duplicate count at the end is bounded by its mapper forks
    // (only mapper-created copies can be duplicates; engine branch
    // siblings differ in path constraints).
    for (label, scenario) in scenarios() {
        let report = run(&scenario, Algorithm::Cow);
        assert!(
            report.duplicate_states as u64 <= report.mapper.mapper_forks,
            "{label}: {} duplicates > {} mapper forks",
            report.duplicate_states,
            report.mapper.mapper_forks
        );
    }
}

#[test]
fn declared_invariants_check_cleanly_on_benign_scenarios() {
    // The declarative checking layer (DESIGN.md §12) on a failure-free
    // ring: "a ring node never hears more than its two neighbors" holds
    // in every final state, on every algorithm.
    let neighbors = |view: &NodeView| {
        let count = view.memory_byte(sde::os::layout::NEIGHBORS);
        Some(Expr::ugt(count, Expr::const_(2, Width::W8)))
    };
    for alg in Algorithm::ALL {
        let mut engine = Engine::new(ring_hello(5), alg);
        engine.run_in_place();
        let checker = Checker::new().node_local("neighbor-count-bounded", neighbors);
        assert!(
            checker.check(&engine).is_empty(),
            "{alg}: bounded neighbor count must hold on a benign ring"
        );
    }
}

#[test]
fn a_false_invariant_is_reported_with_a_witness() {
    // Positive control for the layer itself: claim every ring node hears
    // *fewer* than two neighbors — false everywhere — and demand a
    // structured violation naming the invariant and a concrete witness.
    let mut engine = Engine::new(ring_hello(4), Algorithm::Sds);
    engine.run_in_place();
    let checker = Checker::new().node_local("too-few-neighbors", |view: &NodeView| {
        let count = view.memory_byte(sde::os::layout::NEIGHBORS);
        Some(Expr::eq(count, Expr::const_(2, Width::W8)))
    });
    let violations = checker.check(&engine);
    assert!(!violations.is_empty(), "the false invariant must be caught");
    let v = &violations[0];
    assert_eq!(v.invariant, "too-few-neighbors");
    assert!(!v.nodes.is_empty());
    assert_ne!(v.digest(), 0);
}

#[test]
fn histories_grow_only_on_communication() {
    let scenario = ring_hello(4);
    let mut engine = Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();
    for s in engine.states() {
        // Each ring node broadcasts once (2 sends) and hears both
        // neighbors (2 receives).
        assert_eq!(s.history.len(), 4, "{}", s.id);
    }
}
