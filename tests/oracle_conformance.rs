//! Conformance oracle sweep: exhaustive concrete enumeration vs the
//! dscenario sets of COB, COW and SDS (DESIGN.md §9).
//!
//! The paper's §III claims the three state mapping algorithms explore
//! identical scenario sets, and §II-A claims every explored path has a
//! concrete replay. [`sde::core::oracle`] checks both from the outside:
//! enumerate *every* concrete input assignment through the non-forking
//! replay path, canonicalize each run into a path-class outcome, and
//! demand the symbolic side covers exactly that set — nothing missing
//! (unsoundness), nothing phantom (over-approximation).
//!
//! The sweep spans four topologies (line, ring, grid, mesh), three
//! workloads (collect, flood, sense) and three failure models (drop,
//! duplicate, reboot — alone and mixed), each under all three
//! algorithms; a seeded fuzz loop adds randomized small scenarios on
//! top. Every verdict here is *exhaustive*: the scenarios are sized so
//! that no enumeration, domain, or testgen cap ever truncates.

#[path = "common/faults.rs"]
mod faults;
#[path = "common/grid.rs"]
mod grid;
#[path = "common/line.rs"]
mod line;
#[path = "common/mesh.rs"]
mod mesh;
#[path = "common/ring.rs"]
mod ring;

use grid::grid_collect;
use line::line_collect;
use mesh::mesh_flood;
use ring::ring_hello;
use sde::core::oracle::{conformance_against, ground_truth, GroundTruth, OracleConfig};
use sde::prelude::*;

/// Shared check: compute the ground truth once, then demand every
/// algorithm's dscenario set matches it exactly and exhaustively.
fn assert_all_algorithms_conform(
    label: &str,
    scenario: &Scenario,
    cfg: &OracleConfig,
) -> GroundTruth {
    let truth = ground_truth(scenario, cfg);
    assert!(
        truth.exhaustive(),
        "{label}: ground truth truncated (replays {}, capped domains {:?}) — grow the caps or \
         shrink the scenario, a truncated sweep proves nothing",
        truth.replays,
        truth.domain_truncated
    );
    assert!(
        !truth.outcomes.is_empty(),
        "{label}: empty ground truth — the scenario never ran"
    );
    for alg in Algorithm::ALL {
        let report = conformance_against(&truth, scenario, alg, None, cfg);
        assert!(
            report.is_clean() && report.exhaustive(),
            "{label}/{}: {}\n{}\n{}",
            alg.name(),
            report.summary(),
            report.missing.join("\n"),
            report.phantom.join("\n"),
        );
        assert_eq!(
            report.matched,
            truth.outcomes.len(),
            "{label}/{}: every ground-truth outcome must be matched",
            alg.name()
        );
    }
    truth
}

// --- topology sweep under the drop failure model ---------------------------

#[test]
fn line_collect_with_drops_conforms() {
    let scenario = line_collect(3, &[0, 1], 2, false);
    let truth = assert_all_algorithms_conform("line3-drop", &scenario, &OracleConfig::default());
    // Two droppable hops: the input space is small but not degenerate.
    assert!(
        truth.outcomes.len() >= 4,
        "{} outcomes",
        truth.outcomes.len()
    );
}

#[test]
fn grid_collect_with_route_drops_conforms() {
    let scenario = grid_collect(2, 2, 4000, false);
    assert_all_algorithms_conform("grid2x2-drop", &scenario, &OracleConfig::default());
}

#[test]
fn mesh_flood_with_drops_everywhere_conforms() {
    let scenario = mesh_flood(3, 1);
    let truth = assert_all_algorithms_conform("mesh3-drop", &scenario, &OracleConfig::default());
    assert!(
        truth.outcomes.len() >= 2,
        "{} outcomes",
        truth.outcomes.len()
    );
}

#[test]
fn ring_hello_without_failures_conforms() {
    // No symbolic inputs at all: the ground truth is the single concrete
    // run, and no algorithm may invent a second one.
    let scenario = ring_hello(4);
    let truth = assert_all_algorithms_conform("ring4-none", &scenario, &OracleConfig::default());
    assert_eq!(truth.outcomes.len(), 1);
    assert_eq!(truth.assignments, 1);
}

// --- failure-model sweep ---------------------------------------------------

/// Collect on a short line with an arbitrary failure configuration.
fn line_with_failures(k: u16, packets: u16, failures: FailureConfig) -> Scenario {
    let topology = Topology::line(k);
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: packets,
        strict_sink: false,
    };
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true)
}

#[test]
fn duplicate_failure_model_conforms() {
    let failures = FailureConfig::new().with_duplicates([NodeId(0), NodeId(1)], 1);
    let scenario = line_with_failures(3, 2, failures);
    let truth =
        assert_all_algorithms_conform("line3-duplicate", &scenario, &OracleConfig::default());
    assert!(
        truth.outcomes.len() >= 2,
        "{} outcomes",
        truth.outcomes.len()
    );
}

#[test]
fn reboot_failure_model_conforms() {
    let failures = FailureConfig::new().with_reboots([NodeId(1)], 1);
    let scenario = line_with_failures(3, 2, failures);
    let truth = assert_all_algorithms_conform("line3-reboot", &scenario, &OracleConfig::default());
    assert!(
        truth.outcomes.len() >= 2,
        "{} outcomes",
        truth.outcomes.len()
    );
}

#[test]
fn mixed_failure_models_conform() {
    // Drop, duplicate and reboot budgets in one scenario: the enumeration
    // must interleave all three decision kinds correctly.
    let failures = FailureConfig::new()
        .with_drops([NodeId(0)], 1)
        .with_duplicates([NodeId(1)], 1)
        .with_reboots([NodeId(1)], 1);
    let scenario = line_with_failures(3, 2, failures);
    let truth = assert_all_algorithms_conform("line3-mixed", &scenario, &OracleConfig::default());
    assert!(
        truth.outcomes.len() >= 4,
        "{} outcomes",
        truth.outcomes.len()
    );
}

// --- extended fault-axis sweep (DESIGN.md §11) -----------------------------

/// Faultless collect on the paper's 2×2 grid — the second topology of
/// the fault-axis matrix (the first is the 3-node line).
fn grid_base() -> Scenario {
    let topology = Topology::grid(2, 2);
    let cfg = CollectConfig {
        source: NodeId(3),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 1,
        strict_sink: false,
    };
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_duration_ms(4000)
        .with_history_tracking(true)
}

/// One fault axis, layered alone on two topologies, under all three
/// algorithms: a divergence here is attributable to a single fault
/// mechanism on a single topology.
fn check_fault_axis(axis: &'static str) {
    for (name, base) in [
        ("line3", line_with_failures(3, 1, FailureConfig::new())),
        ("grid2x2", grid_base()),
    ] {
        let scenario = base.clone().with_faults(faults::fault_preset(axis, &base));
        let label = format!("{name}-{axis}");
        let truth = assert_all_algorithms_conform(&label, &scenario, &OracleConfig::default());
        assert!(
            truth.outcomes.len() >= 2,
            "{label}: a fault axis must split the outcome set ({} outcomes)",
            truth.outcomes.len()
        );
    }
}

#[test]
fn partition_axis_conforms() {
    check_fault_axis("partition");
}

#[test]
fn latency_axis_conforms() {
    check_fault_axis("latency");
}

#[test]
fn corruption_axis_conforms() {
    check_fault_axis("corrupt");
}

#[test]
fn crash_recovery_axis_conforms() {
    check_fault_axis("crashrec");
}

#[test]
fn crash_recovery_persist_workload_conforms() {
    // The persist workload is *built* to observe the crash-recovery
    // split: a persistent boot counter and sequence high-water mark
    // against volatile mirrors. Its outcome set under the crashrec axis
    // must still enumerate exactly.
    use sde::os::apps::persist::{self, PersistConfig};
    let topology = Topology::line(2);
    let cfg = PersistConfig {
        source: NodeId(1),
        ..PersistConfig::default()
    };
    let programs = persist::programs(&topology, &cfg);
    let base = Scenario::new(topology, programs)
        .with_duration_ms(1000)
        .with_history_tracking(true);
    let scenario = base
        .clone()
        .with_faults(faults::fault_preset("crashrec", &base));
    let truth = assert_all_algorithms_conform(
        "line2-persist-crashrec",
        &scenario,
        &OracleConfig::default(),
    );
    assert!(
        truth.outcomes.len() >= 2,
        "{} outcomes",
        truth.outcomes.len()
    );
}

#[test]
fn truncated_fault_sweeps_are_flagged_not_silent() {
    // Corruption mints a W8 byte input (domain 256). Capping the oracle's
    // per-axis domain below that must surface as an explicit truncation
    // flag on the ground truth *and* the conformance report — a capped
    // verdict must never look like a full one.
    let base = line_with_failures(2, 1, FailureConfig::new());
    let scenario = base
        .clone()
        .with_faults(faults::fault_preset("corrupt", &base));
    let cfg = OracleConfig {
        domains: sde::core::oracle::Domains::new().with_max_domain(16),
        ..OracleConfig::default()
    };
    let truth = ground_truth(&scenario, &cfg);
    assert!(
        !truth.exhaustive(),
        "a 16-value cap on a 256-value byte domain must truncate"
    );
    assert!(
        truth.domain_truncated.iter().any(|n| n.contains("cor")),
        "the corruption input must be named in the truncation flags: {:?}",
        truth.domain_truncated
    );
    let report = conformance_against(&truth, &scenario, Algorithm::Sds, None, &cfg);
    assert!(
        !report.exhaustive(),
        "the conformance report must inherit the truncation: {}",
        report.summary()
    );
    assert!(!report.domain_truncated.is_empty());

    // The enumeration cap is surfaced the same way.
    let capped = OracleConfig {
        max_assignments: 3,
        ..OracleConfig::default()
    };
    let truth = ground_truth(&scenario, &capped);
    assert!(truth.truncated, "3 replays cannot cover a byte domain");
    assert!(!truth.exhaustive());
}

// --- data-symbolic workload (inputs beyond failure decisions) --------------

#[test]
fn sense_readings_conform_with_domain_hint() {
    use sde::os::apps::sense::{self, SenseConfig};
    let topology = Topology::line(2);
    let cfg = SenseConfig {
        source: NodeId(1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 1,
        max_reading: 7,
        levels: 2,
        parity_guard: false,
    };
    let programs = sense::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs)
        .with_duration_ms(3000)
        .with_history_tracking(true);
    // Enumerate past the program's own `assume(reading <= 7)` on purpose:
    // the out-of-range tail must land in `infeasible`, not in the outcome
    // set — and the symbolic side must still match exactly.
    let cfg = OracleConfig {
        domains: sde::core::oracle::Domains::new().with_hint("reading", 15),
        ..OracleConfig::default()
    };
    let truth = assert_all_algorithms_conform("line2-sense", &scenario, &cfg);
    assert_eq!(
        truth.assignments, 8,
        "readings 0..=7 are feasible: {truth:?}"
    );
    assert_eq!(truth.infeasible, 8, "readings 8..=15 fail the assume");
    assert!(
        truth.outcomes.len() < truth.assignments,
        "classification buckets the 8 feasible readings into fewer path classes"
    );
    // The `reading <= 7` bound lives in the *source's* path condition,
    // so the sink forks locally on both classification arms; the lazily
    // cross-producted dscenarios pairing globally-contradictory states
    // must be reported as unsolvable (and filtered, not replayed).
    let report = conformance_against(&truth, &scenario, Algorithm::Cob, None, &cfg);
    assert!(
        report.unsolvable > 0,
        "cross-node data constraints should make some dscenarios globally UNSAT: {}",
        report.summary()
    );
}

// --- seeded fuzz loop ------------------------------------------------------

/// splitmix64: tiny deterministic seed expander (no RNG dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a small random collect scenario from one seed: topology,
/// packet count and failure model all vary, but every input domain is
/// boolean and the node count stays tiny, so the exhaustive enumeration
/// never needs truncation and the conformance verdict is always total.
fn fuzz_scenario(seed: u64) -> (String, Scenario) {
    let mut s = seed;
    let mut next = || splitmix64(&mut s);
    let k = 2 + (next() % 2) as u16; // 2..=3 nodes
    let (topo_name, topology) = match next() % 2 {
        0 => (format!("line{k}"), Topology::line(k)),
        _ => (format!("ring{}", k + 1), Topology::ring(k + 1)),
    };
    let n = topology.len() as u16;
    let packets = 1 + (next() % 2) as u16;
    let victims: Vec<NodeId> = (0..n).filter(|_| next() % 2 == 0).map(NodeId).collect();
    let fail_name = faults::FAILURE_MODELS[(next() % 3) as usize];
    let failures = faults::failure_model(fail_name, &victims);
    let cfg = CollectConfig {
        source: NodeId(n - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: packets,
        strict_sink: false,
    };
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true);
    let label = format!("seed{seed}:{topo_name}-{packets}pkt-{fail_name}@{victims:?}");
    (label, scenario)
}

#[test]
fn seeded_random_scenarios_conform() {
    for seed in 0..8 {
        let (label, scenario) = fuzz_scenario(seed);
        assert_all_algorithms_conform(&label, &scenario, &OracleConfig::default());
    }
}
