//! Documentation lint: the markdown documents reference real artifacts.
//!
//! Keeps README/DESIGN/EXPERIMENTS/docs honest as the workspace evolves:
//! every `cargo run --example`/`--bin` they mention must exist, and every
//! repo-relative path in backticks must resolve.

use std::collections::BTreeSet;
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read(path: &str) -> String {
    std::fs::read_to_string(repo_root().join(path))
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn mentioned(pattern: &str, text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in text.lines() {
        let mut rest = line;
        while let Some(pos) = rest.find(pattern) {
            let tail = &rest[pos + pattern.len()..];
            let name: String = tail
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                .collect();
            if !name.is_empty() {
                out.insert(name);
            }
            rest = tail;
        }
    }
    out
}

#[test]
fn every_documented_example_exists() {
    for doc in [
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "docs/ALGORITHMS.md",
    ] {
        let text = read(doc);
        for example in mentioned("--example ", &text) {
            let path = repo_root().join("examples").join(format!("{example}.rs"));
            assert!(path.exists(), "{doc} mentions missing example `{example}`");
        }
    }
}

#[test]
fn every_documented_bin_exists() {
    for doc in ["README.md", "DESIGN.md", "EXPERIMENTS.md"] {
        let text = read(doc);
        for bin in mentioned("--bin ", &text) {
            let path = repo_root()
                .join("crates/bench/src/bin")
                .join(format!("{bin}.rs"));
            assert!(path.exists(), "{doc} mentions missing bin `{bin}`");
        }
    }
}

#[test]
fn every_documented_test_file_exists() {
    for doc in ["README.md", "EXPERIMENTS.md", "docs/ALGORITHMS.md"] {
        let text = read(doc);
        for t in mentioned("tests/", &text) {
            let path = repo_root().join("tests").join(format!("{t}.rs"));
            // `tests/` may also be referenced as a directory; only check
            // names that look like files (mentioned captures the stem).
            // Integration tests live both at the workspace root and under
            // `crates/<crate>/tests/`.
            if !t.is_empty() {
                let in_crate_tests = std::fs::read_dir(repo_root().join("crates"))
                    .map(|dir| {
                        dir.filter_map(Result::ok)
                            .any(|e| e.path().join("tests").join(format!("{t}.rs")).exists())
                    })
                    .unwrap_or(false);
                assert!(
                    path.exists() || repo_root().join("tests").join(&t).exists() || in_crate_tests,
                    "{doc} mentions missing test `{t}`"
                );
            }
        }
    }
}

#[test]
fn workspace_documents_exist() {
    for required in [
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "CHANGELOG.md",
        "docs/ALGORITHMS.md",
    ] {
        assert!(repo_root().join(required).exists(), "missing {required}");
    }
}

#[test]
fn design_lists_every_crate() {
    let design = read("DESIGN.md");
    for krate in [
        "sde-trace",
        "sde-pds",
        "sde-symbolic",
        "sde-vm",
        "sde-net",
        "sde-os",
        "sde-core",
        "sde-bench",
    ] {
        assert!(design.contains(krate), "DESIGN.md does not mention {krate}");
    }
}

/// The `TraceEvent` variant names, parsed out of the enum declaration in
/// `crates/trace/src/event.rs` (the source of truth — a new variant
/// added there must show up here without editing this test).
fn trace_event_variants() -> Vec<String> {
    let source = read("crates/trace/src/event.rs");
    let body = source
        .split_once("pub enum TraceEvent {")
        .expect("event.rs declares TraceEvent")
        .1;
    let mut variants = Vec::new();
    for line in body.lines() {
        if line.starts_with('}') {
            break;
        }
        // Variants are struct-like: `    Name {`.
        let trimmed = line.trim_start();
        if let Some(name) = trimmed.strip_suffix(" {") {
            if !name.is_empty() && name.chars().all(char::is_alphanumeric) {
                variants.push(name.to_string());
            }
        }
    }
    variants
}

#[test]
fn design_section_7_documents_every_trace_event() {
    let variants = trace_event_variants();
    assert!(
        variants.len() >= 10,
        "suspiciously few TraceEvent variants parsed: {variants:?}"
    );
    let design = read("DESIGN.md");
    let section = design
        .split("## 7. Execution tracing")
        .nth(1)
        .expect("DESIGN.md has §7 'Execution tracing'")
        .split("\n## ")
        .next()
        .expect("§7 has a body");
    for variant in &variants {
        assert!(
            section.contains(&format!("`{variant}`")),
            "DESIGN.md §7 does not document TraceEvent::{variant}"
        );
    }
}

#[test]
fn design_section_numbering_is_sequential() {
    let design = read("DESIGN.md");
    let numbers: Vec<u32> = design
        .lines()
        .filter_map(|l| l.strip_prefix("## "))
        .filter_map(|h| h.split('.').next()?.parse().ok())
        .collect();
    let expected: Vec<u32> = (1..=numbers.len() as u32).collect();
    assert_eq!(
        numbers, expected,
        "DESIGN.md top-level sections are misnumbered (a renumbering left a stale header)"
    );
}

/// The `EngineSnapshot` field names, parsed out of the struct
/// declaration in `crates/core/src/checkpoint.rs` (the source of truth —
/// a field added there must be documented in DESIGN.md §8 without
/// editing this test).
fn engine_snapshot_fields() -> Vec<String> {
    let source = read("crates/core/src/checkpoint.rs");
    let body = source
        .split_once("pub struct EngineSnapshot {")
        .expect("checkpoint.rs declares EngineSnapshot")
        .1;
    let mut fields = Vec::new();
    for line in body.lines() {
        if line.starts_with('}') {
            break;
        }
        if let Some(rest) = line.trim_start().strip_prefix("pub(crate) ") {
            if let Some((name, _)) = rest.split_once(':') {
                fields.push(name.trim().to_string());
            }
        }
    }
    fields
}

#[test]
fn design_section_8_documents_every_snapshot_field() {
    let fields = engine_snapshot_fields();
    assert!(
        fields.len() >= 20,
        "suspiciously few EngineSnapshot fields parsed: {fields:?}"
    );
    let design = read("DESIGN.md");
    let section = design
        .split("## 8. Checkpoint & resume")
        .nth(1)
        .expect("DESIGN.md has §8 'Checkpoint & resume'")
        .split("\n## ")
        .next()
        .expect("§8 has a body");
    for field in &fields {
        assert!(
            section.contains(field.as_str()),
            "DESIGN.md §8 does not document EngineSnapshot field `{field}`"
        );
    }
}
