//! Trace ↔ report consistency: for a sweep of seeded scenarios, the
//! counters reconstructed by folding over the recorded event stream must
//! *exactly* equal what [`RunReport`], [`RunReport::trace`] and the
//! solver's own [`SolverStats`] say — forks by reason, packet fates,
//! dispatches by kind, and solver queries per answering layer. A missed
//! or double-recorded instrumentation site breaks an equality here.

#[path = "common/seeded.rs"]
mod seeded;

use sde::prelude::*;
use sde::trace::{
    DispatchKind, ForkReason, GroupLayer, QueryLayer, RingSink, TraceEvent, TraceSink, Verdict,
};
use seeded::scenario_from_seed;
use std::sync::Arc;

/// Every counter reconstructible from an event stream.
#[derive(Debug, Default, PartialEq, Eq)]
struct Recount {
    boots: u64,
    dispatch: [u64; 3], // boot, timer, deliver
    forks: [u64; 5],    // ForkReason::ALL order
    sends: u64,
    delivers: u64,
    drops: u64,
    queries: u64,
    query_layers: [u64; 3], // fold, exact, solve
    verdicts: [u64; 3],     // sat, unsat, unknown
    group_layers: [u64; 4], // exact, reuse, ucore, solve
}

fn recount(events: &[TraceEvent]) -> Recount {
    let mut c = Recount::default();
    for ev in events {
        match ev {
            TraceEvent::Boot { .. } => c.boots += 1,
            TraceEvent::Dispatch { kind, .. } => {
                c.dispatch[match kind {
                    DispatchKind::Boot => 0,
                    DispatchKind::Timer => 1,
                    DispatchKind::Deliver => 2,
                }] += 1;
            }
            TraceEvent::Fork { reason, .. } => {
                c.forks[ForkReason::ALL.iter().position(|r| r == reason).unwrap()] += 1;
            }
            TraceEvent::Send { .. } => c.sends += 1,
            TraceEvent::Deliver { .. } => c.delivers += 1,
            TraceEvent::Drop { .. } => c.drops += 1,
            TraceEvent::Query { layer, verdict, .. } => {
                c.queries += 1;
                c.query_layers[match layer {
                    QueryLayer::Fold => 0,
                    QueryLayer::Exact => 1,
                    QueryLayer::Solve => 2,
                }] += 1;
                c.verdicts[match verdict {
                    Verdict::Sat => 0,
                    Verdict::Unsat => 1,
                    Verdict::Unknown => 2,
                }] += 1;
            }
            TraceEvent::QueryGroup { layer } => {
                c.group_layers[match layer {
                    GroupLayer::Exact => 0,
                    GroupLayer::Reuse => 1,
                    GroupLayer::Ucore => 2,
                    GroupLayer::Solve => 3,
                }] += 1;
            }
            _ => {}
        }
    }
    c
}

#[test]
fn trace_counters_equal_report_counters() {
    for i in 0..10u64 {
        let seed = 0xc0de ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (label, scenario) = scenario_from_seed(seed);
        for alg in Algorithm::ALL {
            let sink = Arc::new(RingSink::default());
            let report = Engine::new(scenario.clone(), alg)
                .with_trace_sink(sink.clone() as Arc<dyn TraceSink>)
                .run();
            assert_eq!(sink.dropped(), 0, "[{label}] {alg} trace ring evicted");
            let events: Vec<TraceEvent> = sink.take().into_iter().map(|te| te.ev).collect();
            let c = recount(&events);
            let t = &report.trace;
            let s = &report.solver;
            let ctx = format!("[{label}] {alg}");

            // Engine-side counters.
            assert_eq!(c.boots, t.boots, "{ctx}: boots");
            assert_eq!(c.dispatch[0], t.dispatch_boot, "{ctx}: boot dispatches");
            assert_eq!(c.dispatch[1], t.dispatch_timer, "{ctx}: timer dispatches");
            assert_eq!(
                c.dispatch[2], t.dispatch_deliver,
                "{ctx}: deliver dispatches"
            );
            assert_eq!(c.forks[0], t.forks_branch, "{ctx}: branch forks");
            assert_eq!(c.forks[1], t.forks_mapping, "{ctx}: mapping forks");
            assert_eq!(c.forks[2], t.forks_drop, "{ctx}: drop forks");
            assert_eq!(c.forks[3], t.forks_duplicate, "{ctx}: duplicate forks");
            assert_eq!(c.forks[4], t.forks_reboot, "{ctx}: reboot forks");
            assert_eq!(
                c.forks.iter().sum::<u64>(),
                (report.total_states - c.boots as usize) as u64,
                "{ctx}: every non-root state is exactly one fork event"
            );

            // Packet fates.
            assert_eq!(c.sends, report.packets, "{ctx}: sends");
            assert_eq!(c.delivers, t.packets_delivered, "{ctx}: deliveries");
            assert_eq!(c.drops, t.packets_dropped, "{ctx}: drops");

            // Solver layers: one Query event per solver query, layer
            // split matching the cache counters exactly.
            assert_eq!(c.queries, s.queries, "{ctx}: query count");
            assert_eq!(c.queries, t.solver_queries, "{ctx}: summary query count");
            assert_eq!(
                c.query_layers[1], s.cache_hits,
                "{ctx}: exact-layer queries"
            );
            assert_eq!(c.group_layers[0], s.group_cache_hits, "{ctx}: group hits");
            assert_eq!(c.group_layers[1], s.model_reuse_hits, "{ctx}: reuse hits");
            assert_eq!(c.group_layers[2], s.ucore_hits, "{ctx}: ucore hits");
            assert_eq!(c.verdicts[0], s.sat, "{ctx}: sat verdicts");
            assert_eq!(c.verdicts[1], s.unsat, "{ctx}: unsat verdicts");
            assert_eq!(c.verdicts[2], s.unknown, "{ctx}: unknown verdicts");
        }
    }
}
