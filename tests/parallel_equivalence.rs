//! Differential tests for the parallel engine: `Engine::run_parallel`
//! must be *bit-identical* to the sequential `Engine::run` — same state
//! ids, packet ids, instruction counts, series rows, and final-state
//! digest — at every worker count, for every algorithm, topology, and
//! symbolic failure model. Speculation may only change wall-clock times
//! and solver counters (speculative queries are merged into the shared
//! solver's totals), both of which `RunReport::equivalence_key`
//! deliberately excludes.

#[path = "common/faults.rs"]
mod faults;

use sde::prelude::*;
use sde_core::Engine;
use sde_os::apps::collect::{self, CollectConfig};
use sde_os::apps::sense::{self, SenseConfig};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The three topologies of the matrix: line(4), grid(3×3), ring(5).
fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("line4", Topology::line(4)),
        ("grid3x3", Topology::grid(3, 3)),
        ("ring5", Topology::ring(5)),
    ]
}

/// Collect workload with one symbolic failure model injected on two
/// middle nodes (budget 1 each).
fn scenario(topology: &Topology, failure: &str) -> Scenario {
    let k = topology.len() as u16;
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 1,
        strict_sink: false,
    };
    let failures = faults::failure_model(failure, &[NodeId(1), NodeId(k / 2)]);
    let programs = collect::programs(topology, &cfg);
    Scenario::new(topology.clone(), programs)
        .with_failures(failures)
        .with_duration_ms(4000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

/// Runs the full worker-count sweep for one failure model and compares
/// every parallel report against the sequential baseline.
fn check_failure_model(failure: &str) {
    for (topo_name, topology) in topologies() {
        let scenario = scenario(&topology, failure);
        for alg in Algorithm::ALL {
            let seq = Engine::new(scenario.clone(), alg).run();
            let seq_key = seq.equivalence_key();
            assert!(
                seq.parallel.is_none(),
                "sequential runs carry no ParallelStats"
            );
            for workers in WORKER_COUNTS {
                let par = Engine::new(scenario.clone(), alg).run_parallel(workers);
                assert_eq!(
                    par.equivalence_key(),
                    seq_key,
                    "{alg} on {topo_name} with {failure} diverged at {workers} workers"
                );
                let pstats = par
                    .parallel
                    .as_ref()
                    .expect("parallel runs report ParallelStats");
                assert_eq!(pstats.workers, workers);
                assert!(
                    pstats.batches >= 1 && pstats.batches <= par.events,
                    "batches ({}) must count distinct timestamps, bounded by \
                     processed events ({})",
                    pstats.batches,
                    par.events
                );
            }
        }
    }
}

#[test]
fn drops_are_bit_identical_across_worker_counts() {
    check_failure_model("drop");
}

#[test]
fn duplicates_are_bit_identical_across_worker_counts() {
    check_failure_model("duplicate");
}

#[test]
fn reboots_are_bit_identical_across_worker_counts() {
    check_failure_model("reboot");
}

/// Solver-bound workload: symbolic sensor readings classified at every
/// route hop (see `sde_os::apps::sense`). This is the scenario where
/// speculative cache-warming has real queries to warm.
fn sense_scenario(topology: &Topology) -> Scenario {
    let k = topology.len() as u16;
    let cfg = SenseConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 2,
        max_reading: 63,
        levels: 1,
        parity_guard: true,
    };
    let programs = sense::programs(topology, &cfg);
    Scenario::new(topology.clone(), programs)
        .with_duration_ms(4000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

/// The data-forking sense workload must also be bit-identical — its
/// branch outcomes, fork order, and state ids all flow through the solver
/// that speculation shares.
#[test]
fn sense_workload_is_bit_identical_across_worker_counts() {
    let topology = Topology::line(4);
    let scenario = sense_scenario(&topology);
    for alg in Algorithm::ALL {
        let seq = Engine::new(scenario.clone(), alg).run();
        let seq_key = seq.equivalence_key();
        assert!(seq.solver.queries > 0, "sense must exercise the solver");
        for workers in WORKER_COUNTS {
            let par = Engine::new(scenario.clone(), alg).run_parallel(workers);
            assert_eq!(
                par.equivalence_key(),
                seq_key,
                "{alg} sense diverged at {workers} workers"
            );
        }
    }
}

/// Satellite: the shared solver merges speculative and authoritative
/// query counts, so a parallel run reports at least as many queries as
/// the sequential run — and speculative warming produces a nonzero cache
/// hit rate on a solver-bound workload.
#[test]
fn parallel_solver_stats_are_merged_totals() {
    let topology = Topology::line(4);
    let scenario = sense_scenario(&topology);
    let seq = Engine::new(scenario.clone(), Algorithm::Sds).run();
    let par = Engine::new(scenario.clone(), Algorithm::Sds).run_parallel(4);

    assert_eq!(par.equivalence_key(), seq.equivalence_key());
    let pstats = par.parallel.as_ref().expect("parallel stats");
    assert!(
        pstats.spec_groups > 0,
        "a 4-node batch must fan out at least one speculative group"
    );
    assert!(pstats.spec_events > 0);
    assert!(pstats.spec_instructions > 0);
    // Satellite (silent-abort bugfix): groups that blow the speculative
    // instruction cap are *counted*, never silently discarded — and this
    // workload is far below the cap, so the count must be zero.
    assert_eq!(
        pstats.spec_aborts, 0,
        "no sense group approaches SPEC_INSTRUCTION_CAP"
    );
    assert!(
        par.solver.queries > seq.solver.queries,
        "speculative queries are merged into the shared totals: {} <= {}",
        par.solver.queries,
        seq.solver.queries
    );
    assert!(
        par.solver.cache_hits > seq.solver.cache_hits,
        "warmed cache must produce hits"
    );
    // Speculative warming fills the per-group exact cache, so the parallel
    // run must record strictly more group hits — while the equivalence key
    // (asserted above) proves the extra cache traffic changed no answer.
    assert!(
        par.solver.group_cache_hits > seq.solver.group_cache_hits,
        "speculation must warm the group cache: {} <= {}",
        par.solver.group_cache_hits,
        seq.solver.group_cache_hits
    );
    // Every query the authoritative pass repeats after a speculative
    // worker is answered by some cache layer, so the total volume of
    // cache-layer answers (exact group hits plus counterexample reuse)
    // must grow with the speculative traffic. (The per-query *rate* is
    // saturated in both runs — nearly every group is a layer hit — so
    // absolute growth is the meaningful signal.)
    let layered =
        |s: &sde_symbolic::SolverStats| s.group_cache_hits + s.model_reuse_hits + s.ucore_hits;
    assert!(
        layered(&par.solver) > layered(&seq.solver),
        "speculation must add cache-layer answers: {} <= {}",
        layered(&par.solver),
        layered(&seq.solver)
    );
}

/// Replay presets skip speculation but still go through the parallel
/// loop: reports must match the sequential replay exactly.
#[test]
fn preset_replays_match_under_parallel_execution() {
    let topology = Topology::line(4);
    let scenario = scenario(&topology, "drop");
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    engine.run_in_place();
    let cases = sde_core::testgen::generate(&engine, 4);
    assert!(!cases.cases.is_empty());
    for case in cases.cases.iter().take(2) {
        let preset = sde::vm::Preset::from_model(&case.model, engine.symbols());
        let seq = Engine::new(scenario.clone(), Algorithm::Sds)
            .with_preset(preset.clone())
            .run();
        let par = Engine::new(scenario.clone(), Algorithm::Sds)
            .with_preset(preset)
            .run_parallel(4);
        assert_eq!(
            par.equivalence_key(),
            seq.equivalence_key(),
            "case {}",
            case.id
        );
        let pstats = par.parallel.as_ref().expect("parallel stats");
        assert_eq!(
            pstats.speculated_batches, 0,
            "preset runs must not speculate"
        );
    }
}
