//! Measured COB growth versus the §III-E analytic worst case.
//!
//! The paper's model assumes a worst-case program in which every node
//! branches at every step: after `u` rounds, `2^{k·u}` dscenarios exist,
//! holding `k · 2^{k·u}` states. We build exactly that program (each
//! timer tick introduces one fresh symbolic boolean and branches on it),
//! run COB, and compare measured dscenario/state counts against the
//! closed-form bound — exact equality, since the workload *is* the worst
//! case.

use sde::prelude::*;
use sde_core::complexity::WorstCase;
use sde_core::Engine;
use sde_net::Topology;
use sde_vm::ProgramBuilder;

/// A node that branches on one fresh symbolic boolean every second.
fn brancher_program(rounds: u16) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.function("on_boot", 0, |f| {
        let delay = f.imm(1000, Width::W64);
        f.set_timer(delay, 1);
        f.ret(None);
    });
    pb.function("on_timer", 1, move |f| {
        let b = f.reg();
        f.make_symbolic(b, "coin", Width::BOOL);
        let (heads, tails) = (f.label(), f.label());
        f.br(b, heads, tails);
        // Both sides re-arm the timer (bounded by the scenario duration).
        f.place(heads);
        let d1 = f.imm(1000, Width::W64);
        f.set_timer(d1, 1);
        f.ret(None);
        f.place(tails);
        let d2 = f.imm(1000, Width::W64);
        f.set_timer(d2, 1);
        f.ret(None);
    });
    let _ = rounds;
    pb.build().expect("brancher is well-formed")
}

fn run_worst_case(k: u16, rounds: u64) -> sde_core::Engine {
    let topology = Topology::disconnected(k);
    let programs: Vec<Program> = (0..k).map(|_| brancher_program(rounds as u16)).collect();
    // Duration admits exactly `rounds` timer firings per node.
    let scenario =
        sde_core::Scenario::new(topology, programs).with_duration_ms(1000 * rounds + 500);
    let mut engine = Engine::new(scenario, Algorithm::Cob);
    engine.run_in_place();
    engine
}

#[test]
fn cob_matches_the_closed_form_exactly() {
    for (k, rounds) in [(1u16, 3u64), (2, 2), (3, 2), (2, 3)] {
        let engine = run_worst_case(k, rounds);
        let model = WorstCase::new(u32::from(k));
        let expected_dscenarios = model
            .dscenarios_at_level(rounds)
            .to_u128()
            .expect("small enough");
        let expected_states = model
            .states_at_level(rounds)
            .to_u128()
            .expect("small enough");
        assert_eq!(
            engine.mapper().group_count() as u128,
            expected_dscenarios,
            "k={k}, u={rounds}: dscenario count"
        );
        let live = engine.states().filter(|s| s.is_live()).count();
        assert_eq!(
            live as u128, expected_states,
            "k={k}, u={rounds}: live state count"
        );
    }
}

#[test]
fn cow_and_sds_stay_exponentially_below_the_bound() {
    // Without communication one dstate suffices (§III-B: "we could run
    // the complete symbolic execution with just one dstate").
    let k = 3u16;
    let rounds = 2u64;
    let topology = Topology::disconnected(k);
    let programs: Vec<Program> = (0..k).map(|_| brancher_program(rounds as u16)).collect();
    let scenario =
        sde_core::Scenario::new(topology, programs).with_duration_ms(1000 * rounds + 500);
    for alg in [Algorithm::Cow, Algorithm::Sds] {
        let report = sde_core::run(&scenario, alg);
        assert_eq!(report.groups, 1, "{alg}: no communication → one dstate");
        // k nodes × 2^rounds paths each — linear in paths, not in their
        // product.
        assert_eq!(
            report.live_states as u64,
            u64::from(k) * (1 << rounds),
            "{alg}"
        );
    }
    let cob = run_worst_case(k, rounds);
    let cob_live = cob.states().filter(|s| s.is_live()).count() as u64;
    assert_eq!(cob_live, u64::from(k) * (1u64 << (u64::from(k) * rounds)));
}

#[test]
fn instruction_bound_dominates_measured_instructions() {
    // I(u) = 2^{k·u} counts only the one-instruction-per-branch model;
    // our brancher executes a handful of instructions around each branch,
    // so compare against the bound scaled by the handler length.
    let (k, rounds) = (2u16, 2u64);
    let engine = run_worst_case(k, rounds);
    let model = WorstCase::new(u32::from(k));
    let bound = model.instructions(rounds).to_u128().unwrap();
    let per_handler_overhead = 8u128; // instructions per on_timer body
    let measured: u128 = engine
        .states()
        .map(|s| s.vm.instructions_executed() as u128)
        .max()
        .unwrap();
    assert!(
        measured <= bound * per_handler_overhead + 16,
        "measured {measured} exceeds scaled bound {bound} × {per_handler_overhead}"
    );
}
