//! End-to-end protocol verification with SDE: the pingpong client's
//! timeout/retransmission logic must mask any single packet drop or
//! duplication — and symbolic execution proves it for *every* failure
//! combination at once, which is exactly the paper's pitch for symbolic
//! failure models ("such symbolic failures help us to detect
//! corner-cases before deployment", §IV-A).

use sde::prelude::*;
use sde_core::Engine;
use sde_net::Topology;
use sde_os::apps::pingpong::{self, PingPongConfig};
use sde_os::layout;

fn scenario(failures: FailureConfig, requests: u16, duration_ms: u64) -> Scenario {
    let topology = Topology::line(2);
    let cfg = PingPongConfig {
        client: NodeId(0),
        server: NodeId(1),
        requests,
        timeout_ms: 500,
    };
    let programs = pingpong::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(duration_ms)
        .with_history_tracking(true)
}

fn client_counter(engine: &Engine, addr: u32) -> Vec<u64> {
    engine
        .states()
        .filter(|s| s.node == NodeId(0) && s.is_live())
        .map(|s| s.vm.memory_byte(addr).as_const().expect("concrete"))
        .collect()
}

#[test]
fn no_failures_no_retries() {
    let mut engine = Engine::new(scenario(FailureConfig::new(), 3, 5000), Algorithm::Sds);
    engine.run_in_place();
    assert_eq!(engine.states().count(), 2, "no symbolic input, no forks");
    assert_eq!(client_counter(&engine, layout::ACKED), vec![3]);
    assert_eq!(client_counter(&engine, layout::RETRIES), vec![0]);
}

#[test]
fn single_drop_is_masked_in_every_branch() {
    // Either endpoint may drop one packet. Whatever happens, every final
    // client state must have all requests acknowledged — the retry
    // masked the loss — and at least one branch must actually have
    // retried.
    let failures = FailureConfig::new().with_drops([NodeId(0), NodeId(1)], 1);
    for alg in Algorithm::ALL {
        let mut engine = Engine::new(scenario(failures.clone(), 2, 8000), alg);
        engine.run_in_place();
        let acked = client_counter(&engine, layout::ACKED);
        assert!(!acked.is_empty());
        assert!(
            acked.iter().all(|&a| a == 2),
            "{alg}: a drop was not masked: {acked:?}"
        );
        let retries = client_counter(&engine, layout::RETRIES);
        assert!(
            retries.iter().any(|&r| r > 0),
            "{alg}: some branch must exercise the retransmission path"
        );
        assert!(
            retries.contains(&0),
            "{alg}: the failure-free branch must not retry"
        );
    }
}

#[test]
fn duplication_is_absorbed_by_the_server() {
    // The network may duplicate a delivery to the server: the server's
    // dedup counter must catch it in the duplicated branch, and the
    // client must still converge to exactly `requests` acks.
    let failures = FailureConfig::new().with_duplicates([NodeId(1)], 1);
    let mut engine = Engine::new(scenario(failures, 2, 8000), Algorithm::Sds);
    engine.run_in_place();
    let acked = client_counter(&engine, layout::ACKED);
    assert!(acked.iter().all(|&a| a == 2), "{acked:?}");
    let dup_counts: Vec<u64> = engine
        .states()
        .filter(|s| s.node == NodeId(1) && s.is_live())
        .map(|s| s.vm.memory_byte(layout::DUP_REQS).as_const().unwrap())
        .collect();
    assert!(
        dup_counts.iter().any(|&d| d > 0),
        "the duplicated branch must hit the dedup path: {dup_counts:?}"
    );
}

#[test]
fn drop_and_duplicate_combined() {
    let failures = FailureConfig::new()
        .with_drops([NodeId(0)], 1)
        .with_duplicates([NodeId(1)], 1);
    let report = sde_core::run(&scenario(failures, 2, 9000), Algorithm::Sds);
    assert_eq!(report.duplicate_states, 0);
    assert!(report.bugs.is_empty());
    // 2 binary failure decisions → up to 4 behavioral branches per
    // endpoint pair; all represented without state blowup.
    assert!(report.total_states < 40, "{}", report.total_states);
}

#[test]
fn witnesses_pin_the_failure_combination() {
    let failures = FailureConfig::new().with_drops([NodeId(0), NodeId(1)], 1);
    let mut engine = Engine::new(scenario(failures, 2, 8000), Algorithm::Sds);
    engine.run_in_place();
    let cases = sde_core::testgen::generate(&engine, 32);
    assert!(
        cases.cases.len() >= 3,
        "several failure combinations explored"
    );
    // Each case replays deterministically to its branch.
    for case in cases.cases.iter().take(4) {
        let preset = sde::vm::Preset::from_model(&case.model, engine.symbols());
        let failures = FailureConfig::new().with_drops([NodeId(0), NodeId(1)], 1);
        let replay = Engine::new(scenario(failures, 2, 8000), Algorithm::Sds)
            .with_preset(preset)
            .run();
        assert_eq!(replay.total_states, 2, "case {} forked", case.id);
    }
}
