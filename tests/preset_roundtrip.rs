//! Property tests for the model → preset → replay round-trip.
//!
//! A solver [`Model`] keys inputs by `SymId` — the global creation index,
//! which a non-forking replay does not reproduce. [`Preset::from_model`]
//! re-keys by the run-independent `(node, name, occurrence)` replay key.
//! Two properties make that translation trustworthy:
//!
//! 1. **Round-trip:** for every test case a symbolic run generates, the
//!    derived preset answers every input the replay actually requests
//!    with the model's value — and the only misses are inputs the model
//!    genuinely leaves unconstrained (a dscenario doesn't constrain what
//!    it never branched on).
//! 2. **Collision determinism:** sibling states of one lineage mint
//!    distinct `SymId`s sharing a replay key; when a (possibly merged)
//!    model constrains several of them, the latest-minted one wins —
//!    deterministically, independent of insertion order.

#[path = "common/line.rs"]
mod line;

use line::line_collect;
use proptest::prelude::*;
use sde::prelude::*;
use sde_core::testgen;
use sde_vm::Preset;

// ---------------------------------------------------------------------------
// 1. collision determinism, over random collision patterns
// ---------------------------------------------------------------------------

proptest! {
    /// Random batches of variables over a handful of replay keys, random
    /// subsets constrained with random values: `from_model` must pick,
    /// for every key, the value of the *latest-minted* constrained
    /// variable — whatever the sizes, overlaps and values.
    fn from_model_resolves_collisions_to_latest_minted(
        vars in proptest::collection::vec((0u16..3, 0u32..3, any::<u64>(), any::<bool>()), 1..24)
    ) {
        let mut symbols = SymbolTable::new();
        let mut model = Model::new();
        // Latest constrained var per replay key; minting order == SymId
        // order, so "latest" is simply the last constrained entry.
        let mut expect: std::collections::BTreeMap<(u16, String, u32), u64> =
            std::collections::BTreeMap::new();
        for (node, occurrence, value, constrained) in vars {
            let var = symbols.fresh_keyed("input", Width::W64, node, occurrence);
            if constrained {
                model.assign(var.id(), value);
                expect.insert(var.replay_key(), value);
            }
        }
        let preset = Preset::from_model(&model, &symbols);
        prop_assert_eq!(preset.len(), expect.len());
        for ((node, name, occ), value) in &expect {
            prop_assert_eq!(preset.get(*node, name, *occ), Some(*value));
        }
    }
}

// ---------------------------------------------------------------------------
// 2. end-to-end round-trip through the engine
// ---------------------------------------------------------------------------

/// Replays every generated test case of `scenario` with a recording
/// preset and checks each input request against the model it came from.
fn assert_cases_roundtrip(label: &str, scenario: &Scenario) {
    for alg in Algorithm::ALL {
        let mut engine = Engine::new(scenario.clone(), alg);
        engine.run_in_place();
        let report = testgen::generate(&engine, 4096);
        assert!(!report.truncated, "{label}: sweep scenarios must fit");
        for case in &report.cases {
            let preset = Preset::from_model(&case.model, engine.symbols()).recording();
            let log = preset.log().expect("recording preset has a log");
            let mut replay = Engine::new(scenario.clone(), Algorithm::Cob).with_preset(preset);
            replay.run_in_place();
            let log = log.lock().expect("request log");
            assert_eq!(
                log.requests.is_empty(),
                engine.symbols().is_empty(),
                "{label}/{} case {}: the replay consults the preset exactly when the \
                 symbolic run minted inputs",
                alg.name(),
                case.id
            );
            for request in &log.requests {
                // The model's value for this replay key is the
                // latest-minted constrained variable — mirror exactly
                // what `Preset::from_model` documents.
                let expected = engine
                    .symbols()
                    .iter()
                    .filter(|v| v.replay_key() == request.replay_key())
                    .filter_map(|v| case.model.value_of(v.id()))
                    .last();
                assert_eq!(
                    request.pinned,
                    expected,
                    "{label}/{} case {}: request {:?} disagrees with the model",
                    alg.name(),
                    case.id,
                    request.replay_key(),
                );
            }
        }
    }
}

#[test]
fn generated_cases_roundtrip_through_presets() {
    assert_cases_roundtrip("line3", &line_collect(3, &[0, 1], 2, false));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The same round-trip over randomized drop placements and packet
    /// counts on a short line.
    fn random_scenarios_roundtrip(
        drop_mask in 0u16..8,
        packets in 1u16..3,
    ) {
        let drops: Vec<u16> = (0..3).filter(|i| drop_mask & (1 << i) != 0).collect();
        let scenario = line_collect(4, &drops, packets, false);
        assert_cases_roundtrip(&format!("line4 drops={drops:?} packets={packets}"), &scenario);
    }
}
