//! Differential tests for online duplicate-dispatch pruning (DESIGN.md
//! §10): a run with `Engine::set_dedup(true)` must explore exactly the
//! same behavior as a run without it — same per-node path sets, same
//! dscenario fingerprints, same bugs, same state/event/packet counts,
//! same generated test cases — while *executing* fewer states on
//! duplicate-heavy workloads.
//!
//! Replayed states clone the memoized survivor's expressions instead of
//! minting fresh symbolic ids, so raw configuration digests (and hence
//! `RunReport::equivalence_key`, which folds them into
//! `history_digest` and the duplicate counts) legitimately differ
//! between a dedup-on and a dedup-off run. The comparisons here are
//! therefore *canonical*: `path_digest` is location-based and
//! symbol-id-free, and bug/testgen outputs are compared by content.

#[path = "common/faults.rs"]
mod faults;
#[path = "common/fingerprints.rs"]
mod fingerprints;
#[path = "common/grid.rs"]
mod grid;
#[path = "common/line.rs"]
mod line;
#[path = "common/ring.rs"]
mod ring;

use fingerprints::{dscenario_fingerprints, path_sets};
use grid::grid_collect;
use line::line_collect;
use proptest::prelude::*;
use ring::ring_hello;
use sde::prelude::*;
use sde_core::{DedupStats, Engine};
use sde_os::apps::collect::{self, CollectConfig};
use std::collections::BTreeSet;

/// Collect workload with a chosen failure model on two middle nodes —
/// exercises the drop/duplicate/reboot fork paths under dedup.
fn failure_scenario(topology: &Topology, failure: &str) -> Scenario {
    let k = topology.len() as u16;
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 1,
        strict_sink: false,
    };
    let failures = faults::failure_model(failure, &[NodeId(1), NodeId(k / 2)]);
    let programs = collect::programs(topology, &cfg);
    Scenario::new(topology.clone(), programs)
        .with_failures(failures)
        .with_duration_ms(4000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

/// The scenario matrix shared by the differential tests.
fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        ("line4-drop2", line_collect(4, &[2], 2, false)),
        ("line3-strict", line_collect(3, &[1], 2, true)),
        ("grid3x3", grid_collect(3, 3, 3000, false)),
        ("ring5", ring_hello(5)),
        (
            "line4-dup",
            failure_scenario(&Topology::line(4), "duplicate"),
        ),
        (
            "line4-reboot",
            failure_scenario(&Topology::line(4), "reboot"),
        ),
        (
            "grid2x2-drop",
            failure_scenario(&Topology::grid(2, 2), "drop"),
        ),
    ]
}

/// Canonical, symbol-id-free fingerprint of what a run explored and
/// found. Two runs with this value equal covered the same behavior.
#[derive(Debug, PartialEq, Eq)]
struct Canonical {
    paths: Vec<(NodeId, Vec<u64>)>,
    dscenarios: BTreeSet<Vec<(u16, u64)>>,
    bugs: BTreeSet<(u16, String, String, String)>,
    total_states: usize,
    live_states: usize,
    events: u64,
    packets: u64,
    groups: usize,
    aborted: bool,
}

/// Runs `scenario` under `alg`, captures the canonical fingerprint from
/// the live engine, then consumes it into the report.
fn run_one(scenario: &Scenario, alg: Algorithm, dedup: bool) -> (Canonical, RunReport) {
    let mut engine = Engine::new(scenario.clone(), alg).with_dedup(dedup);
    engine.run_in_place();
    finish(engine)
}

/// Canonicalizes a finished engine and consumes it into its report.
fn finish(engine: Engine) -> (Canonical, RunReport) {
    let paths = path_sets(&engine);
    let dscenarios = dscenario_fingerprints(&engine);
    let report = engine.into_report();
    let canonical = Canonical {
        paths,
        dscenarios,
        bugs: report
            .bugs
            .iter()
            .map(|b| {
                (
                    b.node.0,
                    b.report.kind.to_string(),
                    b.report.loc.to_string(),
                    b.report.message.to_string(),
                )
            })
            .collect(),
        total_states: report.total_states,
        live_states: report.live_states,
        events: report.events,
        packets: report.packets,
        groups: report.groups,
        aborted: report.aborted,
    };
    (canonical, report)
}

#[test]
fn dedup_preserves_canonical_outputs_across_algorithms() {
    for (label, scenario) in &scenarios() {
        for alg in Algorithm::ALL {
            let (off_canon, off_report) = run_one(scenario, alg, false);
            let (on_canon, on_report) = run_one(scenario, alg, true);

            assert_eq!(
                off_report.dedup,
                DedupStats::default(),
                "[{label}] {alg}: dedup-off run must report zero dedup work"
            );
            assert_eq!(
                on_canon, off_canon,
                "[{label}] {alg}: dedup changed what the run explored"
            );
            // The pruning payoff: dedup never executes *more* states, and
            // every confirmed replay pruned at least its dispatched state.
            assert!(
                on_report.states_executed <= off_report.states_executed,
                "[{label}] {alg}: dedup executed {} states, plain run {}",
                on_report.states_executed,
                off_report.states_executed
            );
            assert!(
                on_report.dedup.pruned_states >= on_report.dedup.confirmed,
                "[{label}] {alg}: {} confirmed replays pruned only {} states",
                on_report.dedup.confirmed,
                on_report.dedup.pruned_states
            );
            assert_eq!(
                on_report.dedup.candidates,
                on_report.dedup.confirmed + on_report.dedup.collisions,
                "[{label}] {alg}: every candidate either confirms or collides"
            );
        }
    }
}

#[test]
fn dedup_prunes_duplicate_heavy_cob_runs() {
    // COB floods the engine with mapper-forked duplicate states (§III-A);
    // their dispatches are congruent, so dedup must land confirmed
    // replays and a measurable execution reduction.
    let scenario = grid_collect(3, 3, 3000, false);
    let (_, off) = run_one(&scenario, Algorithm::Cob, false);
    let (_, on) = run_one(&scenario, Algorithm::Cob, true);
    assert!(
        on.dedup.confirmed > 0,
        "COB grid must produce congruent duplicate dispatches: {}",
        on.dedup.summary()
    );
    assert!(
        on.dedup.pruned_states > 0 && on.dedup.saved_instructions > 0,
        "confirmed replays must bank pruned states and instructions: {}",
        on.dedup.summary()
    );
    assert!(
        on.states_executed < off.states_executed,
        "dedup must execute strictly fewer states on a duplicate-heavy \
         workload ({} vs {})",
        on.states_executed,
        off.states_executed
    );
    assert_eq!(
        on.total_states, off.total_states,
        "pruning execution must not change the explored state count"
    );
}

#[test]
fn testgen_output_is_identical_with_dedup() {
    // Replayed duplicates must still explode into the same dscenarios
    // and solve to the same concrete test cases: same nodes, same state
    // ids (replay mints ids in recorded order), same input assignments.
    for (label, scenario) in [
        ("line4-drop2", line_collect(4, &[2], 2, false)),
        (
            "grid2x2-drop",
            failure_scenario(&Topology::grid(2, 2), "drop"),
        ),
    ] {
        for alg in Algorithm::ALL {
            let mut off = Engine::new(scenario.clone(), alg);
            off.run_in_place();
            let mut on = Engine::new(scenario.clone(), alg).with_dedup(true);
            on.run_in_place();
            let off_gen = sde_core::testgen::generate(&off, 64);
            let on_gen = sde_core::testgen::generate(&on, 64);
            assert_eq!(
                off_gen.dscenarios_seen, on_gen.dscenarios_seen,
                "[{label}] {alg}: dscenario enumeration changed under dedup"
            );
            assert_eq!(
                off_gen.unsolvable, on_gen.unsolvable,
                "[{label}] {alg}: solvability changed under dedup"
            );
            // Dscenario iteration order can differ between the runs (it
            // follows expression identity), so compare the case *sets*.
            type CaseKey = Vec<(u16, u64, Vec<(String, u64)>)>;
            let strip = |r: &sde_core::testgen::TestGenReport| -> BTreeSet<CaseKey> {
                r.cases
                    .iter()
                    .map(|c| {
                        c.nodes
                            .iter()
                            .map(|n| (n.node.0, n.state.0, n.inputs.clone()))
                            .collect()
                    })
                    .collect()
            };
            assert_eq!(
                strip(&off_gen),
                strip(&on_gen),
                "[{label}] {alg}: generated test cases diverged under dedup"
            );
        }
    }
}

#[test]
fn checkpointed_dedup_run_matches_straight_runs() {
    // A dedup run paused, serialized, and resumed restarts with a cold
    // memo index — it may execute more states than the uninterrupted
    // run, but everything canonical must be identical to both the
    // straight dedup run and the plain run.
    for (label, scenario) in [
        ("line4-drop2", line_collect(4, &[1, 2], 2, false)),
        ("grid3x3", grid_collect(3, 3, 3000, false)),
    ] {
        for alg in Algorithm::ALL {
            let (plain, _) = run_one(&scenario, alg, false);
            let (straight, straight_report) = run_one(&scenario, alg, true);
            assert_eq!(straight, plain, "[{label}] {alg}: straight dedup diverged");

            let mut engine = Engine::new(scenario.clone(), alg).with_dedup(true);
            let mut pauses = 0usize;
            while engine.run_until(Budget::events(7)) != RunOutcome::Complete {
                let snap = if pauses < 3 {
                    let bytes = engine.snapshot().to_bytes();
                    EngineSnapshot::from_bytes(&bytes).expect("snapshot bytes must decode")
                } else {
                    engine.snapshot()
                };
                engine = Engine::resume(scenario.clone(), &snap).expect("snapshot must resume");
                assert!(
                    engine.dedup_enabled(),
                    "[{label}] {alg}: resume dropped the dedup flag"
                );
                pauses += 1;
            }
            assert!(pauses > 0, "[{label}] {alg}: run too small to pause");
            let (interrupted, interrupted_report) = finish(engine);
            assert_eq!(
                interrupted, straight,
                "[{label}] {alg}: interrupted dedup run diverged after {pauses} pauses"
            );
            // Cold index ⇒ at least as much execution as uninterrupted.
            assert!(
                interrupted_report.states_executed >= straight_report.states_executed,
                "[{label}] {alg}: resumed run cannot execute fewer states \
                 ({} vs {})",
                interrupted_report.states_executed,
                straight_report.states_executed
            );
        }
    }
}

#[test]
fn preset_replay_keeps_dedup_inert() {
    // The conformance oracle replays concrete presets through the
    // non-forking path and compares exact outcomes; memoized replay is
    // forced off there even when the engine has dedup enabled.
    let scenario = line_collect(4, &[2], 2, false);
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    engine.run_in_place();
    let cases = sde_core::testgen::generate(&engine, 4);
    assert!(!cases.cases.is_empty(), "need at least one test case");
    for case in &cases.cases {
        let preset = sde::vm::Preset::from_model(&case.model, engine.symbols());
        let replay = Engine::new(scenario.clone(), Algorithm::Sds)
            .with_preset(preset)
            .with_dedup(true)
            .run();
        assert_eq!(
            replay.dedup,
            DedupStats::default(),
            "preset replay must never consult the memo index: {}",
            replay.dedup.summary()
        );
        assert_eq!(replay.total_states, scenario.node_count());
    }
}

#[test]
fn parallel_dedup_matches_serial_dedup() {
    // The speculative engine only consults the memo index on the
    // authoritative serial-commit path, so a parallel dedup run is the
    // same sequence of executes-and-replays as the serial dedup run.
    // The sharded engine adopts worker recordings *into* the memo index
    // under the merge-computed key, so its commit-path dedup stats (and
    // executed-state marks) must also match the serial run exactly.
    for (label, scenario) in [
        ("line4-drop2", line_collect(4, &[1, 2], 2, false)),
        ("grid3x3", grid_collect(3, 3, 3000, false)),
    ] {
        for alg in Algorithm::ALL {
            let (serial, serial_report) = run_one(&scenario, alg, true);
            for workers in [2usize, 4] {
                for sharded in [false, true] {
                    let mode = if sharded { "shard" } else { "spec" };
                    let mut engine = Engine::new(scenario.clone(), alg).with_dedup(true);
                    if sharded {
                        engine.run_until_sharded(workers, Budget::unlimited());
                    } else {
                        engine.run_until_parallel(workers, Budget::unlimited());
                    }
                    let (parallel, parallel_report) = finish(engine);
                    assert_eq!(
                        parallel, serial,
                        "[{label}] {alg} w={workers}/{mode}: parallel dedup diverged"
                    );
                    assert_eq!(
                        parallel_report.dedup, serial_report.dedup,
                        "[{label}] {alg} w={workers}/{mode}: commit-path dedup \
                         stats must match the serial run"
                    );
                    assert_eq!(
                        parallel_report.states_executed, serial_report.states_executed,
                        "[{label}] {alg} w={workers}/{mode}: authoritative \
                         execution set must match the serial run"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property: the incremental digest is a sound index for structural
// equality. The digest is strictly *finer* than `dedup_eq` (it hashes
// concrete symbol ids, while `dedup_eq` compares the alpha-invariant
// rendering), so the testable direction is: equal digests imply
// structural equality — a failure would be a real hash collision,
// exactly what `MemoEntry::congruent` exists to absorb, but worth
// knowing about on these deterministic workloads. The incremental
// accumulator must also always agree with the from-scratch rescan.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RandomScenario {
    topology_kind: u8,
    k: u16,
    drop_mask: u64,
    packets: u16,
}

fn random_scenarios() -> impl Strategy<Value = RandomScenario> {
    (0u8..4, 3u16..6, any::<u64>(), 1u16..3).prop_map(|(topology_kind, k, drop_mask, packets)| {
        RandomScenario {
            topology_kind,
            k,
            drop_mask,
            packets,
        }
    })
}

fn build(rs: &RandomScenario) -> Scenario {
    let topology = match rs.topology_kind {
        0 => Topology::line(rs.k),
        1 => Topology::ring(rs.k),
        2 => Topology::grid(2, rs.k.div_ceil(2)),
        _ => Topology::full_mesh(rs.k.min(4)),
    };
    let k = topology.len() as u16;
    let source = NodeId(k - 1);
    let cfg = CollectConfig {
        source,
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: rs.packets,
        strict_sink: false,
    };
    let drops: Vec<NodeId> = (0..k)
        .filter(|i| *i != source.0 && rs.drop_mask & (1 << (i % 64)) != 0)
        .map(NodeId)
        .collect();
    let failures = FailureConfig::new().with_drops(drops, 1);
    let programs = collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(rs.packets) + 2000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn digests_are_collision_free_and_incrementally_coherent(rs in random_scenarios()) {
        let scenario = build(&rs);
        // COB maximizes duplicates, so the quadratic scan below actually
        // sees digest-equal pairs.
        let mut engine = Engine::new(scenario.clone(), Algorithm::Cob);
        engine.run_in_place();
        prop_assume!(engine.states().count() < scenario.state_cap);
        let states: Vec<_> = engine.states().collect();
        let mut digest_equal_pairs = 0usize;
        for (i, a) in states.iter().enumerate() {
            prop_assert_eq!(
                a.vm.config_digest(),
                a.vm.config_digest_reference(),
                "state {}: incremental digest drifted from the rescan ({:?})",
                a.id, rs
            );
            for b in &states[i + 1..] {
                if a.node != b.node || a.vm.config_digest() != b.vm.config_digest() {
                    continue;
                }
                digest_equal_pairs += 1;
                prop_assert!(
                    a.vm.dedup_eq(&b.vm),
                    "digest collision between {} and {} on {} ({:?})",
                    a.id, b.id, a.node, rs
                );
            }
        }
        // COB duplicates make the check non-vacuous on most draws; don't
        // require it (tiny topologies can dodge duplication), just make
        // sure the sweep ran over real states.
        prop_assert!(!states.is_empty());
        let _ = digest_equal_pairs;
    }

    #[test]
    fn dedup_is_canonically_invisible_on_random_scenarios(rs in random_scenarios()) {
        let scenario = build(&rs);
        let (off, off_report) = run_one(&scenario, Algorithm::Cob, false);
        prop_assume!(!off.aborted);
        let (on, on_report) = run_one(&scenario, Algorithm::Cob, true);
        prop_assert_eq!(&on, &off, "{:?}", rs);
        prop_assert!(
            on_report.states_executed <= off_report.states_executed,
            "dedup executed more states on {:?}", rs
        );
    }
}
