//! Shared helper: neighbor discovery on a ring.

use sde::prelude::*;

/// Neighbor discovery on a ring (no failures: exercises the pure
/// communication path).
pub fn ring_hello(k: u16) -> Scenario {
    let topology = Topology::ring(k);
    let programs = sde::os::apps::hello::programs(&topology, &HelloConfig::default());
    Scenario::new(topology, programs)
        .with_duration_ms(2000)
        .with_history_tracking(true)
}
