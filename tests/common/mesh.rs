//! Shared helper: flooding on a full mesh.

use sde::prelude::*;

/// Flooding on a full mesh with drops everywhere.
pub fn mesh_flood(k: u16, rounds: u16) -> Scenario {
    let topology = Topology::full_mesh(k);
    let cfg = FloodConfig {
        initiator: NodeId(0),
        rounds,
        interval_ms: 1000,
    };
    let failures = FailureConfig::new().with_drops(topology.nodes(), 1);
    let programs = sde::os::apps::flood::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(rounds) + 2000)
        .with_history_tracking(true)
}
