//! Shared scenario builders for the integration tests.
//!
//! Not every integration-test binary uses every helper.
#![allow(dead_code)]

use sde::prelude::*;

/// The paper's collect workload on a `w × h` grid with symbolic drops on
/// the route and its neighbors.
pub fn grid_collect(w: u16, h: u16, duration_ms: u64, strict: bool) -> Scenario {
    let topology = Topology::grid(w, h);
    let cfg = CollectConfig {
        strict_sink: strict,
        ..CollectConfig::paper_grid(w, h)
    };
    let failures =
        FailureConfig::new().drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(duration_ms)
        .with_history_tracking(true)
}

/// Collect on a line with drops at the given nodes.
pub fn line_collect(k: u16, drop_nodes: &[u16], packets: u16, strict: bool) -> Scenario {
    let topology = Topology::line(k);
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: packets,
        strict_sink: strict,
    };
    let failures = FailureConfig::new().with_drops(drop_nodes.iter().map(|n| NodeId(*n)), 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true)
}

/// Flooding on a full mesh with drops everywhere.
pub fn mesh_flood(k: u16, rounds: u16) -> Scenario {
    let topology = Topology::full_mesh(k);
    let cfg = FloodConfig {
        initiator: NodeId(0),
        rounds,
        interval_ms: 1000,
    };
    let failures = FailureConfig::new().with_drops(topology.nodes(), 1);
    let programs = sde::os::apps::flood::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(rounds) + 2000)
        .with_history_tracking(true)
}

/// Neighbor discovery on a ring (no failures: exercises the pure
/// communication path).
pub fn ring_hello(k: u16) -> Scenario {
    let topology = Topology::ring(k);
    let programs = sde::os::apps::hello::programs(&topology, &HelloConfig::default());
    Scenario::new(topology, programs)
        .with_duration_ms(2000)
        .with_history_tracking(true)
}

/// Per-node sets of explored path identities — the cross-algorithm
/// comparison key (state ids and solver variable ids differ between
/// algorithms, branch-decision digests do not).
pub fn path_sets(report_states: &sde::core::Engine) -> Vec<(NodeId, Vec<u64>)> {
    use std::collections::BTreeMap;
    let mut by_node: BTreeMap<NodeId, std::collections::BTreeSet<u64>> = BTreeMap::new();
    for s in report_states.states() {
        by_node
            .entry(s.node)
            .or_default()
            .insert(s.vm.path_digest());
    }
    by_node
        .into_iter()
        .map(|(n, set)| (n, set.into_iter().collect()))
        .collect()
}

/// Fingerprints every represented dscenario as a sorted list of
/// `(node, path_digest)` pairs — comparable across algorithms.
pub fn dscenario_fingerprints(
    engine: &sde::core::Engine,
) -> std::collections::BTreeSet<Vec<(u16, u64)>> {
    let mut out = std::collections::BTreeSet::new();
    for dscenario in engine.mapper().dscenarios() {
        let mut fp: Vec<(u16, u64)> = dscenario
            .iter()
            .filter_map(|id| engine.state(*id))
            .map(|s| (s.node.0, s.vm.path_digest()))
            .collect();
        fp.sort_unstable();
        out.insert(fp);
    }
    out
}
