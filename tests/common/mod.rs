//! Shared scenario builders for the integration tests.
//!
//! Not every integration-test binary uses every helper.
#![allow(dead_code)]

use sde::prelude::*;

/// The paper's collect workload on a `w × h` grid with symbolic drops on
/// the route and its neighbors.
pub fn grid_collect(w: u16, h: u16, duration_ms: u64, strict: bool) -> Scenario {
    let topology = Topology::grid(w, h);
    let cfg = CollectConfig {
        strict_sink: strict,
        ..CollectConfig::paper_grid(w, h)
    };
    let failures =
        FailureConfig::new().drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(duration_ms)
        .with_history_tracking(true)
}

/// Collect on a line with drops at the given nodes.
pub fn line_collect(k: u16, drop_nodes: &[u16], packets: u16, strict: bool) -> Scenario {
    let topology = Topology::line(k);
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: packets,
        strict_sink: strict,
    };
    let failures = FailureConfig::new().with_drops(drop_nodes.iter().map(|n| NodeId(*n)), 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true)
}

/// Flooding on a full mesh with drops everywhere.
pub fn mesh_flood(k: u16, rounds: u16) -> Scenario {
    let topology = Topology::full_mesh(k);
    let cfg = FloodConfig {
        initiator: NodeId(0),
        rounds,
        interval_ms: 1000,
    };
    let failures = FailureConfig::new().with_drops(topology.nodes(), 1);
    let programs = sde::os::apps::flood::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(rounds) + 2000)
        .with_history_tracking(true)
}

/// Neighbor discovery on a ring (no failures: exercises the pure
/// communication path).
pub fn ring_hello(k: u16) -> Scenario {
    let topology = Topology::ring(k);
    let programs = sde::os::apps::hello::programs(&topology, &HelloConfig::default());
    Scenario::new(topology, programs)
        .with_duration_ms(2000)
        .with_history_tracking(true)
}

/// splitmix64: tiny, high-quality, dependency-free seed expander.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a full scenario from one seed: topology (line/ring/grid/mesh),
/// workload (collect or sense), and failure model (none/drop/duplicate/
/// reboot on a seed-chosen victim set). Returns a describing label with
/// the scenario so assertion messages are self-contained — a failure
/// anywhere prints the seed, and `scenario_from_seed(<seed>)` reproduces
/// the case in isolation.
pub fn scenario_from_seed(seed: u64) -> (String, Scenario) {
    use sde::os::apps::sense::{self, SenseConfig};

    let mut s = seed;
    let mut next = || splitmix64(&mut s);

    let k = 3 + (next() % 3) as u16; // 3..=5 nodes per dimension
    let (topo_name, topology) = match next() % 4 {
        0 => (format!("line{k}"), Topology::line(k)),
        1 => (format!("ring{k}"), Topology::ring(k)),
        2 => (format!("grid2x{k}"), Topology::grid(2, k)),
        _ => ("mesh3".to_string(), Topology::full_mesh(3)),
    };
    let n = topology.len() as u16;
    let source = NodeId(n - 1);
    let sink = NodeId(0);
    let packets = 1 + (next() % 2) as u16;

    let (app_name, programs) = if next() % 2 == 0 {
        let cfg = CollectConfig {
            source,
            sink,
            interval_ms: 1000,
            packet_count: packets,
            strict_sink: false,
        };
        ("collect", sde::os::apps::collect::programs(&topology, &cfg))
    } else {
        let cfg = SenseConfig {
            source,
            sink,
            interval_ms: 1000,
            packet_count: packets,
            max_reading: 31,
            levels: 1,
            parity_guard: next() % 2 == 0,
        };
        ("sense", sense::programs(&topology, &cfg))
    };

    // Victims: a nonempty seed-chosen subset of the non-source nodes.
    let victim_mask = next();
    let mut victims: Vec<NodeId> = (0..n)
        .filter(|i| *i != source.0 && victim_mask & (1 << (i % 64)) != 0)
        .map(NodeId)
        .collect();
    if victims.is_empty() {
        victims.push(sink);
    }
    let (failure_name, failures) = match next() % 4 {
        0 => ("none", FailureConfig::new()),
        1 => ("drop", FailureConfig::new().with_drops(victims, 1)),
        2 => (
            "duplicate",
            FailureConfig::new().with_duplicates(victims, 1),
        ),
        _ => ("reboot", FailureConfig::new().with_reboots(victims, 1)),
    };

    let label = format!("seed={seed:#x} {topo_name} {app_name} {failure_name} packets={packets}");
    let scenario = Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true)
        .with_state_cap(60_000);
    (label, scenario)
}

/// Per-node sets of explored path identities — the cross-algorithm
/// comparison key (state ids and solver variable ids differ between
/// algorithms, branch-decision digests do not).
pub fn path_sets(report_states: &sde::core::Engine) -> Vec<(NodeId, Vec<u64>)> {
    use std::collections::BTreeMap;
    let mut by_node: BTreeMap<NodeId, std::collections::BTreeSet<u64>> = BTreeMap::new();
    for s in report_states.states() {
        by_node
            .entry(s.node)
            .or_default()
            .insert(s.vm.path_digest());
    }
    by_node
        .into_iter()
        .map(|(n, set)| (n, set.into_iter().collect()))
        .collect()
}

/// Fingerprints every represented dscenario as a sorted list of
/// `(node, path_digest)` pairs — comparable across algorithms.
pub fn dscenario_fingerprints(
    engine: &sde::core::Engine,
) -> std::collections::BTreeSet<Vec<(u16, u64)>> {
    let mut out = std::collections::BTreeSet::new();
    for dscenario in engine.mapper().dscenarios() {
        let mut fp: Vec<(u16, u64)> = dscenario
            .iter()
            .filter_map(|id| engine.state(*id))
            .map(|s| (s.node.0, s.vm.path_digest()))
            .collect();
        fp.sort_unstable();
        out.insert(fp);
    }
    out
}
