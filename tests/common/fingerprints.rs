//! Shared helpers: cross-algorithm comparison keys over a finished
//! engine's state set.

use sde::prelude::*;

/// Per-node sets of explored path identities — the cross-algorithm
/// comparison key (state ids and solver variable ids differ between
/// algorithms, branch-decision digests do not).
pub fn path_sets(report_states: &sde::core::Engine) -> Vec<(NodeId, Vec<u64>)> {
    use std::collections::BTreeMap;
    let mut by_node: BTreeMap<NodeId, std::collections::BTreeSet<u64>> = BTreeMap::new();
    for s in report_states.states() {
        by_node
            .entry(s.node)
            .or_default()
            .insert(s.vm.path_digest());
    }
    by_node
        .into_iter()
        .map(|(n, set)| (n, set.into_iter().collect()))
        .collect()
}

/// Fingerprints every represented dscenario as a sorted list of
/// `(node, path_digest)` pairs — comparable across algorithms.
pub fn dscenario_fingerprints(
    engine: &sde::core::Engine,
) -> std::collections::BTreeSet<Vec<(u16, u64)>> {
    let mut out = std::collections::BTreeSet::new();
    for dscenario in engine.mapper().dscenarios() {
        let mut fp: Vec<(u16, u64)> = dscenario
            .iter()
            .filter_map(|id| engine.state(*id))
            .map(|s| (s.node.0, s.vm.path_digest()))
            .collect();
        fp.sort_unstable();
        out.insert(fp);
    }
    out
}
