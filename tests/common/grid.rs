//! Shared helper: the paper's grid collect scenario.

use sde::prelude::*;

/// The paper's collect workload on a `w × h` grid with symbolic drops on
/// the route and its neighbors.
pub fn grid_collect(w: u16, h: u16, duration_ms: u64, strict: bool) -> Scenario {
    let topology = Topology::grid(w, h);
    let cfg = CollectConfig {
        strict_sink: strict,
        ..CollectConfig::paper_grid(w, h)
    };
    let failures =
        FailureConfig::new().drops_on_route_and_neighbors(&topology, cfg.source, cfg.sink, 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(duration_ms)
        .with_history_tracking(true)
}
