//! Shared helper: seed-derived random scenarios for property tests.

#[path = "faults.rs"]
mod faults;

use sde::prelude::*;

/// splitmix64: tiny, high-quality, dependency-free seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a full scenario from one seed: topology (line/ring/grid/mesh),
/// workload (collect or sense), and failure model (none/drop/duplicate/
/// reboot on a seed-chosen victim set). Returns a describing label with
/// the scenario so assertion messages are self-contained — a failure
/// anywhere prints the seed, and `scenario_from_seed(<seed>)` reproduces
/// the case in isolation.
pub fn scenario_from_seed(seed: u64) -> (String, Scenario) {
    use sde::os::apps::sense::{self, SenseConfig};

    let mut s = seed;
    let mut next = || splitmix64(&mut s);

    let k = 3 + (next() % 3) as u16; // 3..=5 nodes per dimension
    let (topo_name, topology) = match next() % 4 {
        0 => (format!("line{k}"), Topology::line(k)),
        1 => (format!("ring{k}"), Topology::ring(k)),
        2 => (format!("grid2x{k}"), Topology::grid(2, k)),
        _ => ("mesh3".to_string(), Topology::full_mesh(3)),
    };
    let n = topology.len() as u16;
    let source = NodeId(n - 1);
    let sink = NodeId(0);
    let packets = 1 + (next() % 2) as u16;

    let (app_name, programs) = if next() % 2 == 0 {
        let cfg = CollectConfig {
            source,
            sink,
            interval_ms: 1000,
            packet_count: packets,
            strict_sink: false,
        };
        ("collect", sde::os::apps::collect::programs(&topology, &cfg))
    } else {
        let cfg = SenseConfig {
            source,
            sink,
            interval_ms: 1000,
            packet_count: packets,
            max_reading: 31,
            levels: 1,
            parity_guard: next() % 2 == 0,
        };
        ("sense", sense::programs(&topology, &cfg))
    };

    // Victims: a nonempty seed-chosen subset of the non-source nodes.
    let victim_mask = next();
    let mut victims: Vec<NodeId> = (0..n)
        .filter(|i| *i != source.0 && victim_mask & (1 << (i % 64)) != 0)
        .map(NodeId)
        .collect();
    if victims.is_empty() {
        victims.push(sink);
    }
    let (failure_name, failures) = match next() % 4 {
        0 => ("none", FailureConfig::new()),
        n => {
            let name = faults::FAILURE_MODELS[(n - 1) as usize];
            (name, faults::failure_model(name, &victims))
        }
    };

    let label = format!("seed={seed:#x} {topo_name} {app_name} {failure_name} packets={packets}");
    let scenario = Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true)
        .with_state_cap(60_000);
    (label, scenario)
}
