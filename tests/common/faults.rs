//! Shared helper: canonical failure models and fault-axis presets.
//!
//! Two layers of symbolic misbehavior (DESIGN.md §6 and §11):
//!
//! * [`failure_model`] builds one of the paper's original three failure
//!   models (drop / duplicate / reboot) with budget 1 on a victim set —
//!   the `match failure { "drop" => ... }` blocks every suite used to
//!   duplicate.
//! * [`fault_preset`] / [`fault_presets`] build the extended fault axes
//!   (partition / latency / corrupt / crashrec) for a given scenario,
//!   mirroring `sde_bench::with_fault_axes`: each axis targets the sink
//!   node 0, where every workload's traffic terminates, so the axis is
//!   guaranteed to be exercised.

use sde::prelude::*;

/// The paper's original three failure models, in canonical order.
#[allow(dead_code)]
pub const FAILURE_MODELS: [&str; 3] = ["drop", "duplicate", "reboot"];

/// The four extended fault axes, in canonical order.
#[allow(dead_code)]
pub const FAULT_AXES: [&str; 4] = ["partition", "latency", "corrupt", "crashrec"];

/// Builds the named classic failure model with budget 1 on `victims`.
///
/// # Panics
///
/// Panics on an unknown model name — a typo must fail loudly, not run a
/// silently failure-free scenario.
#[allow(dead_code)]
pub fn failure_model(name: &str, victims: &[NodeId]) -> FailureConfig {
    let victims = victims.iter().copied();
    match name {
        "drop" => FailureConfig::new().with_drops(victims, 1),
        "duplicate" => FailureConfig::new().with_duplicates(victims, 1),
        "reboot" => FailureConfig::new().with_reboots(victims, 1),
        other => panic!("unknown failure model {other:?} (expected drop|duplicate|reboot)"),
    }
}

/// Builds the named fault axis as a [`FaultPlan`] sized for `scenario`:
///
/// * `partition` — cut every edge into node 0, healing at one of two
///   candidate times (`duration/4` or `duration/2`), so the heal time is
///   itself symbolic;
/// * `latency` — deliveries to node 0 may arrive 3 link-latencies late,
///   one decision;
/// * `corrupt` — one symbolic byte flip on a delivery to node 0;
/// * `crashrec` — node 0 may crash once, keeping the persistent window.
///
/// # Panics
///
/// Panics on an unknown axis name.
#[allow(dead_code)]
pub fn fault_preset(axis: &str, scenario: &Scenario) -> FaultPlan {
    let sink = NodeId(0);
    match axis {
        "partition" => {
            let cut: Vec<(NodeId, NodeId)> = scenario
                .topology
                .neighbors(sink)
                .map(|n| (sink, n))
                .collect();
            let d = scenario.duration_ms;
            FaultPlan::new().with_partition(cut, [d / 4, d / 2])
        }
        "latency" => FaultPlan::new().with_latency([sink], scenario.link_latency_ms * 3, 1),
        "corrupt" => FaultPlan::new().with_corruption([sink], 1),
        "crashrec" => FaultPlan::new().with_crash_recovery(
            [sink],
            1,
            sde::os::layout::PERSIST_BASE,
            sde::os::layout::PERSIST_SIZE,
        ),
        other => {
            panic!("unknown fault axis {other:?} (expected partition|latency|corrupt|crashrec)")
        }
    }
}

/// All four fault-axis presets for `scenario`, labeled, in canonical
/// order — the standard sweep input for the fault differential suites.
#[allow(dead_code)]
pub fn fault_presets(scenario: &Scenario) -> Vec<(&'static str, FaultPlan)> {
    FAULT_AXES
        .iter()
        .map(|axis| (*axis, fault_preset(axis, scenario)))
        .collect()
}
