//! Shared helper: collect on a line topology.

use sde::prelude::*;

/// Collect on a line with drops at the given nodes.
pub fn line_collect(k: u16, drop_nodes: &[u16], packets: u16, strict: bool) -> Scenario {
    let topology = Topology::line(k);
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: packets,
        strict_sink: strict,
    };
    let failures = FailureConfig::new().with_drops(drop_nodes.iter().map(|n| NodeId(*n)), 1);
    let programs = sde::os::apps::collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(packets) + 2000)
        .with_history_tracking(true)
}
