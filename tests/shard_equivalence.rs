//! Differential tests for the *sharded* parallel engine:
//! `Engine::run_sharded` partitions the frontier into disjoint subtrees
//! by root-fork lineage and lets workers execute them authoritatively
//! (worker-local solvers, recorded dispatch effects), yet the
//! deterministic merge must keep every observable bit-identical to the
//! sequential `Engine::run` — same state ids, packet ids, instruction
//! counts, series rows, bugs, and final-state digest — at every worker
//! count, for every algorithm, topology, and symbolic failure model.
//!
//! Traced and preset runs deliberately degenerate to pure serial
//! execution inside the shard loop (DESIGN.md §13), which is what makes
//! their JSONL byte-equality trivial — asserted here anyway, because it
//! is the contract CI's shard-smoke job compares with `cmp`.

#[path = "common/faults.rs"]
mod faults;

use sde::prelude::*;
use sde::trace::{to_jsonl, RingSink, TraceSink};
use sde_core::Engine;
use sde_os::apps::collect::{self, CollectConfig};
use sde_os::apps::sense::{self, SenseConfig};
use std::sync::Arc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The three topologies of the matrix: line(4), grid(3×3), ring(5).
fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("line4", Topology::line(4)),
        ("grid3x3", Topology::grid(3, 3)),
        ("ring5", Topology::ring(5)),
    ]
}

/// Collect workload with one symbolic failure model injected on two
/// middle nodes (budget 1 each) — same matrix as
/// `parallel_equivalence.rs`, so the two parallel modes are pinned
/// against the identical baseline.
fn scenario(topology: &Topology, failure: &str) -> Scenario {
    let k = topology.len() as u16;
    let cfg = CollectConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 1,
        strict_sink: false,
    };
    let failures = faults::failure_model(failure, &[NodeId(1), NodeId(k / 2)]);
    let programs = collect::programs(topology, &cfg);
    Scenario::new(topology.clone(), programs)
        .with_failures(failures)
        .with_duration_ms(4000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

/// Runs the full worker-count sweep for one failure model and compares
/// every sharded report against the sequential baseline.
fn check_failure_model(failure: &str) {
    for (topo_name, topology) in topologies() {
        let scenario = scenario(&topology, failure);
        for alg in Algorithm::ALL {
            let seq = Engine::new(scenario.clone(), alg).run();
            let seq_key = seq.equivalence_key();
            for workers in WORKER_COUNTS {
                let shard = Engine::new(scenario.clone(), alg).run_sharded(workers);
                assert_eq!(
                    shard.equivalence_key(),
                    seq_key,
                    "{alg} on {topo_name} with {failure} diverged at {workers} workers"
                );
                let pstats = shard
                    .parallel
                    .as_ref()
                    .expect("sharded runs report ParallelStats");
                assert_eq!(pstats.workers, workers);
                assert!(
                    pstats.batches >= 1 && pstats.batches <= shard.events,
                    "batches ({}) must count distinct timestamps, bounded by \
                     processed events ({})",
                    pstats.batches,
                    shard.events
                );
                // One recording can be applied to *several* congruent
                // families in a batch, so `shard_applied` may exceed
                // `shard_recorded` — but never appear out of thin air.
                assert!(
                    pstats.shard_applied == 0 || pstats.shard_recorded > 0,
                    "applications require recordings: {}",
                    pstats.summary()
                );
            }
        }
    }
}

#[test]
fn drops_are_bit_identical_across_worker_counts() {
    check_failure_model("drop");
}

#[test]
fn duplicates_are_bit_identical_across_worker_counts() {
    check_failure_model("duplicate");
}

#[test]
fn reboots_are_bit_identical_across_worker_counts() {
    check_failure_model("reboot");
}

/// Solver-bound workload: symbolic sensor readings classified at every
/// route hop. Receive-side dispatches mint no fresh symbols, so this is
/// the scenario where shard workers produce recordings the merge can
/// actually apply.
fn sense_scenario(topology: &Topology) -> Scenario {
    let k = topology.len() as u16;
    let cfg = SenseConfig {
        source: NodeId(k - 1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 2,
        max_reading: 63,
        levels: 1,
        parity_guard: true,
    };
    let programs = sense::programs(topology, &cfg);
    Scenario::new(topology.clone(), programs)
        .with_duration_ms(4000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

#[test]
fn sense_workload_is_bit_identical_across_worker_counts() {
    let topology = Topology::line(4);
    let scenario = sense_scenario(&topology);
    for alg in Algorithm::ALL {
        let seq = Engine::new(scenario.clone(), alg).run();
        let seq_key = seq.equivalence_key();
        assert!(seq.solver.queries > 0, "sense must exercise the solver");
        for workers in WORKER_COUNTS {
            let shard = Engine::new(scenario.clone(), alg).run_sharded(workers);
            assert_eq!(
                shard.equivalence_key(),
                seq_key,
                "{alg} sense diverged at {workers} workers"
            );
        }
    }
}

/// The tentpole's payoff counters: on a mint-free workload the workers
/// must record real dispatch effects and the merge must adopt them
/// instead of re-executing.
#[test]
fn shard_workers_do_authoritative_work() {
    let topology = Topology::line(4);
    let scenario = sense_scenario(&topology);
    let seq = Engine::new(scenario.clone(), Algorithm::Sds).run();
    let shard = Engine::new(scenario.clone(), Algorithm::Sds).run_sharded(4);
    assert_eq!(shard.equivalence_key(), seq.equivalence_key());
    let pstats = shard.parallel.as_ref().expect("shard stats");
    assert!(
        pstats.spec_groups > 0,
        "a 4-node batch must fan out at least one shard group"
    );
    assert!(
        pstats.shard_recorded > 0,
        "workers must record mint-free dispatches: {}",
        pstats.summary()
    );
    assert!(
        pstats.shard_applied > 0,
        "the merge must adopt worker recordings: {}",
        pstats.summary()
    );
    assert_eq!(
        pstats.spec_aborts, 0,
        "no sense group approaches SPEC_INSTRUCTION_CAP"
    );
    assert!(
        pstats.spec_instructions > 0,
        "worker-side execution must bank instructions"
    );
}

/// Runs `scenario` with a recorder attached and returns the
/// deterministic JSONL rendering; `workers == None` is the serial
/// baseline.
fn traced_jsonl(scenario: &Scenario, algorithm: Algorithm, workers: Option<usize>) -> String {
    let sink = Arc::new(RingSink::default());
    let engine = Engine::new(scenario.clone(), algorithm)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    match workers {
        None => engine.run(),
        Some(w) => engine.run_sharded(w),
    };
    assert_eq!(sink.dropped(), 0, "trace ring must not evict in tests");
    to_jsonl(&sink.take(), true)
}

/// Traced shard runs degenerate to serial execution inside the shard
/// loop, so their JSONL must be byte-identical to the sequential trace —
/// not merely equivalent — at every worker count.
#[test]
fn traced_shard_runs_emit_byte_identical_serial_jsonl() {
    for (topo_name, topology) in topologies() {
        let scenario = scenario(&topology, "drop");
        for alg in Algorithm::ALL {
            let baseline = traced_jsonl(&scenario, alg, None);
            assert!(
                !baseline.is_empty(),
                "[{topo_name}] {alg} produced an empty trace"
            );
            for workers in [1usize, 2, 4] {
                assert_eq!(
                    traced_jsonl(&scenario, alg, Some(workers)),
                    baseline,
                    "[{topo_name}] {alg} shard trace diverged at {workers} workers"
                );
            }
        }
    }
}

/// Replay presets skip offloading but still go through the sharded
/// loop: reports must match the sequential replay exactly, and no batch
/// may be offloaded.
#[test]
fn preset_replays_match_under_sharded_execution() {
    let topology = Topology::line(4);
    let scenario = scenario(&topology, "drop");
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    engine.run_in_place();
    let cases = sde_core::testgen::generate(&engine, 4);
    assert!(!cases.cases.is_empty());
    for case in cases.cases.iter().take(2) {
        let preset = sde::vm::Preset::from_model(&case.model, engine.symbols());
        let seq = Engine::new(scenario.clone(), Algorithm::Sds)
            .with_preset(preset.clone())
            .run();
        let shard = Engine::new(scenario.clone(), Algorithm::Sds)
            .with_preset(preset)
            .run_sharded(4);
        assert_eq!(
            shard.equivalence_key(),
            seq.equivalence_key(),
            "case {}",
            case.id
        );
        let pstats = shard.parallel.as_ref().expect("shard stats");
        assert_eq!(
            pstats.speculated_batches, 0,
            "preset runs must not offload batches"
        );
    }
}

/// Sharded segments interrupted by full snapshot→bytes→resume round
/// trips must still land on the sequential baseline — the snapshot
/// carries the shard-lineage fields and the engine's `sharded` flag.
#[test]
fn interrupted_sharded_runs_match_straight_serial_runs() {
    for (topo_name, topology) in topologies() {
        let scenario = scenario(&topology, "drop");
        for alg in Algorithm::ALL {
            let straight = Engine::new(scenario.clone(), alg).run();
            for workers in [2usize, 4] {
                let mut engine = Engine::new(scenario.clone(), alg);
                let mut pauses = 0usize;
                while engine.run_until_sharded(workers, Budget::events(7)) != RunOutcome::Complete {
                    let snap = if pauses < 3 {
                        let bytes = engine.snapshot().to_bytes();
                        EngineSnapshot::from_bytes(&bytes).expect("snapshot bytes must decode")
                    } else {
                        engine.snapshot()
                    };
                    engine = Engine::resume(scenario.clone(), &snap).expect("snapshot must resume");
                    pauses += 1;
                }
                assert!(
                    pauses > 0,
                    "[{topo_name}] {alg} w={workers}: run too small to pause"
                );
                assert_eq!(
                    engine.into_report().equivalence_key(),
                    straight.equivalence_key(),
                    "[{topo_name}] {alg} w={workers} diverged across {pauses} pauses"
                );
            }
        }
    }
}
