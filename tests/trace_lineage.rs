//! Lineage invariants (property-tested): the fork events of any traced
//! run form a forest rooted at the k initial states — every final state
//! is reachable from exactly one root, no state has two parents, and
//! children are always allocated after their parents.

#[path = "common/seeded.rs"]
mod seeded;

use proptest::prelude::*;
use sde::prelude::*;
use sde::trace::{Lineage, RingSink, TraceEvent, TraceSink};
use seeded::scenario_from_seed;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fork_events_form_a_rooted_forest(seed in any::<u64>()) {
        let (label, scenario) = scenario_from_seed(seed);
        for alg in Algorithm::ALL {
            let sink = Arc::new(RingSink::default());
            let report = Engine::new(scenario.clone(), alg)
                .with_trace_sink(sink.clone() as Arc<dyn TraceSink>)
                .run();
            let events: Vec<TraceEvent> =
                sink.take().into_iter().map(|te| te.ev).collect();

            let lineage = Lineage::from_events(events.iter())
                .unwrap_or_else(|e| panic!("[{label}] {alg}: {e}"));
            // validate() checks: non-empty roots, children allocated
            // after parents, every mentioned state reachable from a
            // root. from_events() already rejected double parents.
            lineage
                .validate()
                .unwrap_or_else(|e| panic!("[{label}] {alg}: {e}"));

            // One root per scenario node, and the forest covers exactly
            // the states the report counts.
            prop_assert_eq!(
                lineage.roots().len(),
                scenario.node_count(),
                "[{}] {}: one root per node", label, alg
            );
            prop_assert_eq!(
                lineage.states().len(),
                report.total_states,
                "[{}] {}: forest covers every created state", label, alg
            );
            prop_assert_eq!(
                lineage.fork_count(),
                report.total_states - lineage.roots().len(),
                "[{}] {}: every non-root state has exactly one parent", label, alg
            );

            // Ancestry chains terminate at a root for every state.
            for state in lineage.states() {
                let chain = lineage
                    .ancestry(*state)
                    .unwrap_or_else(|| panic!("[{label}] {alg}: state {state} unreachable"));
                prop_assert!(chain[0].created_by.is_none());
                prop_assert_eq!(chain.last().unwrap().state, *state);
            }
        }
    }
}
