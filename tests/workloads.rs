//! Workload-level behavior across the three bundled applications on
//! assorted topologies — the "does the distributed system actually do
//! its job" layer beneath the state-mapping claims.

use sde::prelude::*;
use sde_core::Engine;
use sde_net::Topology;
use sde_os::apps::flood::{self, FloodConfig};
use sde_os::apps::hello::{self, HelloConfig};
use sde_os::layout;

#[test]
fn flood_reaches_every_node_on_a_grid() {
    let topology = Topology::grid(4, 4);
    let cfg = FloodConfig {
        initiator: NodeId(5),
        rounds: 1,
        interval_ms: 1000,
    };
    let programs = flood::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs).with_duration_ms(3000);
    let mut engine = Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();
    for s in engine.states() {
        let seen =
            s.vm.memory_byte(layout::SEEN_BASE) // seq 0's seen flag
                .as_const()
                .expect("concrete");
        assert_eq!(seen, 1, "{}: flood must reach every node", s.node);
    }
    // Exactly one relay per non-initiator node (duplicate suppression).
    for s in engine.states() {
        if s.node == NodeId(5) {
            continue;
        }
        let forwarded = s.vm.memory_byte(layout::FORWARDED).as_const().unwrap();
        assert_eq!(forwarded, 1, "{}: relayed exactly once", s.node);
    }
}

#[test]
fn flood_multiple_rounds_count_independently() {
    let topology = Topology::ring(5);
    let cfg = FloodConfig {
        initiator: NodeId(0),
        rounds: 3,
        interval_ms: 1000,
    };
    let programs = flood::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs).with_duration_ms(6000);
    let mut engine = Engine::new(scenario, Algorithm::Cow);
    engine.run_in_place();
    for s in engine.states() {
        for seq in 0..3u32 {
            let seen =
                s.vm.memory_byte(layout::SEEN_BASE + seq)
                    .as_const()
                    .unwrap();
            assert_eq!(seen, 1, "{} seq {seq}", s.node);
        }
    }
}

#[test]
fn hello_on_a_grid_counts_degrees() {
    let topology = Topology::grid(3, 3);
    let programs = hello::programs(&topology, &HelloConfig::default());
    let scenario = Scenario::new(topology.clone(), programs).with_duration_ms(2000);
    let mut engine = Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();
    for s in engine.states() {
        let neighbors = s.vm.memory_byte(layout::NEIGHBORS).as_const().unwrap();
        assert_eq!(
            neighbors as usize,
            topology.degree(s.node),
            "{}: HELLO count equals degree",
            s.node
        );
    }
}

#[test]
fn collect_counters_balance_along_the_route() {
    // Sum of forwarded packets along the route equals packets × hops −
    // losses; without failures: every forwarder forwards every packet.
    let topology = Topology::grid(3, 3);
    let cfg = sde_os::apps::collect::CollectConfig {
        strict_sink: false,
        ..sde_os::apps::collect::CollectConfig::paper_grid(3, 3)
    };
    let route = topology.route(cfg.source, cfg.sink).unwrap();
    let programs = sde_os::apps::collect::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs).with_duration_ms(12_000);
    let mut engine = Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();
    for s in engine.states() {
        let forwarded = s.vm.memory_byte(layout::FORWARDED).as_const().unwrap();
        let position = route.iter().position(|n| *n == s.node);
        match position {
            Some(p) if p > 0 && s.node != cfg.sink => {
                assert_eq!(forwarded, 10, "{}: forwarder relays all packets", s.node)
            }
            _ => assert_eq!(forwarded, 0, "{}: never forwards", s.node),
        }
    }
    let sink = engine.states().find(|s| s.node == cfg.sink).unwrap();
    assert_eq!(sink.vm.memory_byte(layout::RECEIVED).as_const(), Some(10));
}

#[test]
fn disconnected_topology_runs_every_node_in_isolation() {
    let topology = Topology::disconnected(4);
    let programs: Vec<Program> = (0..4).map(|_| sde_os::apps::fig1::program()).collect();
    let scenario = Scenario::new(topology, programs);
    let report = sde_core::run(&scenario, Algorithm::Sds);
    // Each node explores fig1's 4 paths independently: 16 final states,
    // one dstate (no communication → no conflicts, §III-B).
    assert_eq!(report.live_states, 16);
    assert_eq!(report.groups, 1);
    assert_eq!(report.packets, 0);
    // COB needs 4^4 dscenarios for the same coverage.
    let cob = sde_core::run(&scenario, Algorithm::Cob);
    assert_eq!(cob.groups, 256);
    assert_eq!(cob.live_states, 4 * 256);
}
