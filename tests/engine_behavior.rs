//! Engine-level behavior: the KleeNet execution model, the three failure
//! models, and resource-cap semantics.

#[path = "common/faults.rs"]
mod faults;
#[path = "common/grid.rs"]
mod grid;
#[path = "common/line.rs"]
mod line;
#[path = "common/ring.rs"]
mod ring;

use faults::failure_model;
use grid::grid_collect;
use line::line_collect;
use ring::ring_hello;
use sde::prelude::*;
use sde_core::Engine;

#[test]
fn hello_ring_counts_neighbors() {
    let mut engine = Engine::new(ring_hello(6), Algorithm::Sds);
    engine.run_in_place();
    for s in engine.states() {
        let neighbors =
            s.vm.memory_byte(sde::os::layout::NEIGHBORS)
                .as_const()
                .expect("concrete");
        assert_eq!(
            neighbors, 2,
            "{}: every ring node hears both neighbors",
            s.id
        );
    }
}

#[test]
fn collect_delivers_all_packets_without_failures() {
    // Strict sink, no failure model: the assert must NOT fire.
    let scenario = line_collect(4, &[], 5, true).with_duration_ms(8000);
    let report = sde_core::run(&scenario, Algorithm::Sds);
    assert!(report.bugs.is_empty());
    assert_eq!(report.total_states, 4, "no symbolic input → no forks");

    let mut engine = Engine::new(
        line_collect(4, &[], 5, true).with_duration_ms(8000),
        Algorithm::Sds,
    );
    engine.run_in_place();
    let sink = engine.states().find(|s| s.node == NodeId(0)).unwrap();
    assert_eq!(
        sink.vm.memory_byte(sde::os::layout::RECEIVED).as_const(),
        Some(5)
    );
}

#[test]
fn drop_budget_limits_forking() {
    // One drop node with budget 1: exactly one drop fork no matter how
    // many packets pass through.
    let scenario = line_collect(3, &[1], 4, false);
    let report = sde_core::run(&scenario, Algorithm::Sds);
    // Initial 3 + drop sibling + conflict-driven receiver forks; the
    // drop decision itself is binary → exactly 2 dstates.
    assert_eq!(report.groups, 2);
    assert_eq!(report.mapper.branches_seen, 1, "only one drop fork");
}

#[test]
fn packet_duplication_forks_and_delivers_twice() {
    let scenario = line_collect(3, &[], 1, false)
        .with_failures(failure_model("duplicate", &[NodeId(0)]))
        .with_duration_ms(4000);
    let mut engine = Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();
    // The sink forked into {delivered once, delivered twice}.
    let sinks: Vec<_> = engine.states().filter(|s| s.node == NodeId(0)).collect();
    assert_eq!(sinks.len(), 2);
    let mut received: Vec<u64> = sinks
        .iter()
        .map(|s| {
            s.vm.memory_byte(sde::os::layout::RECEIVED)
                .as_const()
                .expect("concrete counter")
        })
        .collect();
    received.sort_unstable();
    assert_eq!(received, vec![1, 2]);
}

#[test]
fn node_reboot_clears_memory_and_reruns_boot() {
    let scenario = line_collect(3, &[], 2, false)
        .with_failures(failure_model("reboot", &[NodeId(0)]))
        .with_duration_ms(5000);
    let mut engine = Engine::new(scenario, Algorithm::Sds);
    engine.run_in_place();
    let sinks: Vec<_> = engine.states().filter(|s| s.node == NodeId(0)).collect();
    assert_eq!(sinks.len(), 2, "reboot decision forks the sink");
    let mut counts: Vec<u64> = sinks
        .iter()
        .map(|s| {
            s.vm.memory_byte(sde::os::layout::RECEIVED)
                .as_const()
                .unwrap()
        })
        .collect();
    counts.sort_unstable();
    // Non-rebooting branch accepted both packets; the rebooting branch
    // lost its counter (and the packet that triggered the reboot) but
    // accepted the second one.
    assert_eq!(counts, vec![1, 2]);
}

#[test]
fn state_cap_aborts_cob() {
    let scenario = grid_collect(3, 3, 10_000, false).with_state_cap(100);
    let report = sde_core::run(&scenario, Algorithm::Cob);
    assert!(report.aborted);
    assert!(report.total_states >= 100);
    // SDS under the same cap finishes comfortably.
    let scenario = grid_collect(3, 3, 10_000, false).with_state_cap(100_000);
    let report = sde_core::run(&scenario, Algorithm::Sds);
    assert!(!report.aborted);
}

#[test]
fn time_series_is_monotone_in_totals() {
    let scenario = grid_collect(3, 3, 6000, false).with_sample_every(4);
    let report = sde_core::run(&scenario, Algorithm::Cow);
    let samples = report.series.samples();
    assert!(samples.len() > 2, "sampling produced data");
    for pair in samples.windows(2) {
        assert!(pair[1].total_states >= pair[0].total_states);
        assert!(pair[1].virtual_ms >= pair[0].virtual_ms);
        assert!(pair[1].wall_ms >= pair[0].wall_ms);
    }
    assert_eq!(
        report.peak_bytes,
        report.series.peak_bytes().max(report.final_bytes)
    );
}

#[test]
fn virtual_time_stops_at_duration() {
    let scenario = line_collect(3, &[], 100, false).with_duration_ms(3500);
    let report = sde_core::run(&scenario, Algorithm::Sds);
    assert!(report.virtual_ms <= 3500);
    // 3 packets fit into 3.5 s at 1 packet/s (t = 1000, 2000, 3000).
    let mut engine = Engine::new(
        line_collect(3, &[], 100, false).with_duration_ms(3500),
        Algorithm::Sds,
    );
    engine.run_in_place();
    let source = engine.states().find(|s| s.node == NodeId(2)).unwrap();
    assert_eq!(
        source.vm.memory_byte(sde::os::layout::SEQ).as_const(),
        Some(3)
    );
}

#[test]
fn instructions_and_packets_are_counted() {
    let scenario = ring_hello(4);
    let report = sde_core::run(&scenario, Algorithm::Cob);
    assert!(report.instructions > 0);
    assert_eq!(report.packets, 8, "4 nodes × 2 neighbors");
    assert_eq!(
        report.events,
        4 /* boots */ + 4 /* timers */ + 8 /* delivers */
    );
}

/// Failure budgets are spent *before* forking: the delivery that decides
/// a symbolic drop debits the dropping state's budget. A budget spent
/// before a checkpoint must therefore stay spent across the resume
/// boundary — resuming must not re-fork the same drop, and the final
/// drop-fork count must equal an uninterrupted run's.
#[test]
fn drop_budget_spent_before_checkpoint_stays_spent_after_resume() {
    use sde::trace::{ForkReason, RingSink, TraceEvent, TraceSink};
    use std::sync::Arc;

    let count_drop_forks = |sink: &RingSink| {
        sink.take()
            .into_iter()
            .filter(|te| {
                matches!(
                    te.ev,
                    TraceEvent::Fork {
                        reason: ForkReason::Drop,
                        ..
                    }
                )
            })
            .count()
    };
    let budgets_by_state = |engine: &Engine| {
        let mut budgets: Vec<_> = engine
            .states()
            .map(|s| (s.id.0, s.drop_budget, s.dup_budget, s.reboot_budget))
            .collect();
        budgets.sort_unstable_by_key(|entry| entry.0);
        budgets
    };

    let scenario = line_collect(3, &[1], 2, false);

    // Straight-run baseline: how many drop forks does the budget admit?
    let straight_sink = Arc::new(RingSink::default());
    Engine::new(scenario.clone(), Algorithm::Sds)
        .with_trace_sink(straight_sink.clone() as Arc<dyn TraceSink>)
        .run();
    let straight_drops = count_drop_forks(&straight_sink);
    assert!(straight_drops > 0, "scenario must exercise the drop budget");

    // Interrupted after every event, with a full serialize→deserialize
    // round trip at each pause. Budgets must survive each boundary
    // verbatim: a resume that reset them would re-fork spent drops.
    let sink = Arc::new(RingSink::default());
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let mut pauses = 0usize;
    while engine.run_until(Budget::events(1)) == RunOutcome::Paused {
        let before = budgets_by_state(&engine);
        let bytes = engine.snapshot().to_bytes();
        let snap = EngineSnapshot::from_bytes(&bytes).expect("snapshot bytes must decode");
        engine = Engine::resume(scenario.clone(), &snap)
            .expect("snapshot must resume")
            .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
        assert_eq!(
            before,
            budgets_by_state(&engine),
            "failure budgets must survive the resume boundary"
        );
        pauses += 1;
    }
    assert!(pauses > 0, "run too small to pause");
    assert_eq!(
        count_drop_forks(&sink),
        straight_drops,
        "a drop budget spent before a checkpoint must not fork again after resume"
    );
}
