//! Adversarial fuzz of the snapshot codec, beyond the single-flip and
//! truncation properties of `snapshot_roundtrip.rs`: multi-byte flips,
//! region splices, varint bombs, zero-fill and truncate-then-extend —
//! each with the header checksum re-patched so the corrupted payload
//! reaches the *structural* decoder, not just the digest check.
//!
//! The properties under test:
//!
//! * `EngineSnapshot::from_bytes` never panics — every malformed input
//!   surfaces as a typed [`SnapshotError`];
//! * length prefixes are validated before allocation, so a corrupted
//!   count can never trigger a capacity panic or an absurd allocation;
//! * any corrupted input that *does* decode is a well-formed snapshot:
//!   re-encoding it and decoding again is a fixed point.

#[path = "common/seeded.rs"]
mod seeded;

use proptest::prelude::*;
use sde::prelude::*;
use seeded::scenario_from_seed;

fn mid_run_bytes(seed: u64, algorithm: Algorithm, pause_events: u64) -> Vec<u8> {
    let (_label, scenario) = scenario_from_seed(seed);
    let mut engine = Engine::new(scenario, algorithm);
    engine.run_until(Budget::events(pause_events));
    engine.snapshot().to_bytes()
}

/// Recomputes the header's FNV-1a content digest over `bytes[20..]` and
/// patches it in place, pushing the mutation past the checksum.
fn patch_digest(bytes: &mut [u8]) {
    if bytes.len() <= 20 {
        return;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in &bytes[20..] {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    bytes[12..20].copy_from_slice(&h.to_le_bytes());
}

/// Decoding must not panic; when it succeeds the decoded value must be
/// a self-consistent snapshot (encode → decode is a fixed point).
fn assert_robust(corrupted: &[u8]) -> Result<(), TestCaseError> {
    if let Ok(decoded) = EngineSnapshot::from_bytes(corrupted) {
        let reencoded = decoded.to_bytes();
        let again = EngineSnapshot::from_bytes(&reencoded);
        prop_assert!(
            again.is_ok(),
            "a successfully decoded snapshot must re-encode decodably"
        );
        prop_assert_eq!(
            reencoded,
            again.unwrap().to_bytes(),
            "re-encode must be a fixed point"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Up to 8 independent byte flips, checksum re-patched.
    #[test]
    fn multi_byte_flips_never_panic(
        seed in any::<u64>(),
        flip_seed in any::<u64>(),
        flips in 1usize..8,
    ) {
        let mut bytes = mid_run_bytes(seed, Algorithm::Sds, 9);
        let mut rng = flip_seed;
        for _ in 0..flips {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = 20 + (rng % (bytes.len() as u64 - 20)) as usize;
            bytes[pos] ^= (rng >> 32) as u8 | 1;
        }
        patch_digest(&mut bytes);
        assert_robust(&bytes)?;
    }

    /// Copies one payload region over another — structural corruption
    /// that keeps every byte individually plausible.
    #[test]
    fn region_splices_never_panic(
        seed in any::<u64>(),
        src_seed in any::<u64>(),
        dst_seed in any::<u64>(),
        len in 1usize..64,
    ) {
        let mut bytes = mid_run_bytes(seed, Algorithm::Cow, 9);
        let payload = bytes.len() - 20;
        let len = len.min(payload / 2).max(1);
        let src = 20 + (src_seed % (payload - len) as u64) as usize;
        let dst = 20 + (dst_seed % (payload - len) as u64) as usize;
        let chunk = bytes[src..src + len].to_vec();
        bytes[dst..dst + len].copy_from_slice(&chunk);
        patch_digest(&mut bytes);
        assert_robust(&bytes)?;
    }

    /// Overwrites a run of payload bytes with `0xFF` — maximal varint
    /// continuation bytes, the classic length-bomb shape. The decoder's
    /// `checked_len` guard must reject the count before allocating.
    #[test]
    fn varint_bombs_never_panic_or_overallocate(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        run in 1usize..12,
    ) {
        let mut bytes = mid_run_bytes(seed, Algorithm::Cob, 9);
        let payload = bytes.len() - 20;
        let run = run.min(payload);
        let pos = 20 + (pos_seed % (payload - run + 1) as u64) as usize;
        for b in &mut bytes[pos..pos + run] {
            *b = 0xFF;
        }
        patch_digest(&mut bytes);
        assert_robust(&bytes)?;
    }

    /// Zeroes a run of payload bytes (nulls out tags and counts).
    #[test]
    fn zero_fill_never_panics(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        run in 1usize..48,
    ) {
        let mut bytes = mid_run_bytes(seed, Algorithm::Sds, 5);
        let payload = bytes.len() - 20;
        let run = run.min(payload);
        let pos = 20 + (pos_seed % (payload - run + 1) as u64) as usize;
        for b in &mut bytes[pos..pos + run] {
            *b = 0;
        }
        patch_digest(&mut bytes);
        assert_robust(&bytes)?;
    }

    /// Truncates the snapshot and appends random junk of the same
    /// length, so segment boundaries land mid-structure while the total
    /// length stays plausible.
    #[test]
    fn truncate_then_extend_never_panics(
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
        junk_seed in any::<u64>(),
    ) {
        let mut bytes = mid_run_bytes(seed, Algorithm::Cow, 7);
        let original = bytes.len();
        let cut = 21 + (cut_seed % (original as u64 - 21)) as usize;
        bytes.truncate(cut);
        let mut rng = junk_seed;
        while bytes.len() < original {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            bytes.push((rng >> 56) as u8);
        }
        patch_digest(&mut bytes);
        assert_robust(&bytes)?;
    }
}
