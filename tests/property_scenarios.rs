//! Property-based end-to-end tests: random topologies, random failure
//! placements, random workload parameters — the paper's invariants must
//! hold on all of them.
//!
//! * SDS never produces duplicate states (§III-D);
//! * COW and SDS represent exactly the same dscenario sets as COB
//!   (correctness baseline, §III-A);
//! * state counts are ordered COB ≥ COW ≥ SDS;
//! * mapper bookkeeping stays internally consistent.

#[path = "common/seeded.rs"]
mod seeded;

use proptest::prelude::*;
use sde::prelude::*;
use sde_core::Engine;
use sde_os::apps::collect::{self, CollectConfig};

#[derive(Debug, Clone)]
struct RandomScenario {
    topology_kind: u8,
    k: u16,
    drop_mask: u64,
    packets: u16,
}

fn random_scenarios() -> impl Strategy<Value = RandomScenario> {
    (0u8..4, 3u16..7, any::<u64>(), 1u16..3).prop_map(|(topology_kind, k, drop_mask, packets)| {
        RandomScenario {
            topology_kind,
            k,
            drop_mask,
            packets,
        }
    })
}

fn build(rs: &RandomScenario) -> Scenario {
    let topology = match rs.topology_kind {
        0 => Topology::line(rs.k),
        1 => Topology::ring(rs.k),
        2 => Topology::grid(2, rs.k.div_ceil(2)),
        _ => Topology::full_mesh(rs.k.min(4)),
    };
    let k = topology.len() as u16;
    let source = NodeId(k - 1);
    let sink = NodeId(0);
    let cfg = CollectConfig {
        source,
        sink,
        interval_ms: 1000,
        packet_count: rs.packets,
        strict_sink: false,
    };
    // Random subset of nodes may drop (excluding the source, which never
    // receives anything anyway).
    let drops: Vec<NodeId> = (0..k)
        .filter(|i| *i != source.0 && rs.drop_mask & (1 << (i % 64)) != 0)
        .map(NodeId)
        .collect();
    let failures = FailureConfig::new().with_drops(drops, 1);
    let programs = collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(rs.packets) + 2000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

fn fingerprints(engine: &Engine) -> std::collections::BTreeSet<Vec<(u16, u64)>> {
    let mut out = std::collections::BTreeSet::new();
    for dscenario in engine.mapper().dscenarios() {
        let mut fp: Vec<(u16, u64)> = dscenario
            .iter()
            .filter_map(|id| engine.state(*id))
            .map(|s| (s.node.0, s.vm.path_digest()))
            .collect();
        fp.sort_unstable();
        out.insert(fp);
    }
    out
}

// ---------------------------------------------------------------------------
// Seeded fuzz: `seeded::scenario_from_seed` is a deterministic
// u64-seeded generator over the full topology × app × failure-model mix.
// Unlike the proptest strategies above, a failure here prints the exact
// seed, so `scenario_from_seed(<seed>)` reproduces the case in
// isolation. (The trace test suites sweep the same generator.)
// ---------------------------------------------------------------------------

use seeded::scenario_from_seed;

const FUZZ_SEEDS: u64 = 32;

/// For ≥ 32 seeds: every algorithm's parallel run is bit-identical to its
/// sequential run (worker count also seed-derived), the three algorithms
/// represent the same dscenario sets, and mapper invariants hold. On
/// failure the message leads with the seed.
#[test]
fn seeded_scenarios_are_parallel_and_algorithm_equivalent() {
    for i in 0..FUZZ_SEEDS {
        let seed = 0xc0ffee ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (label, scenario) = scenario_from_seed(seed);
        let workers = [2usize, 3, 4, 8][(seed % 4) as usize];

        let mut keys = Vec::new();
        let mut baseline: Option<std::collections::BTreeSet<Vec<(u16, u64)>>> = None;
        let mut aborted = false;
        for alg in Algorithm::ALL {
            let mut engine = Engine::new(scenario.clone(), alg);
            engine.run_in_place();
            aborted |= engine.states().count() >= scenario.state_cap;
            let fp = fingerprints(&engine);
            assert!(
                engine.mapper().check_invariants().is_none(),
                "[{label}] {alg} mapper invariants"
            );
            // dscenario-set equivalence across COB/COW/SDS (skipped when
            // any run hit the cap: partial explorations are incomparable).
            if !aborted {
                match &baseline {
                    None => baseline = Some(fp),
                    Some(b) => assert_eq!(&fp, b, "[{label}] {alg} dscenarios diverged from COB"),
                }
            }
            keys.push((alg, engine.into_report().equivalence_key()));
        }

        for (alg, seq_key) in &keys {
            let par = Engine::new(scenario.clone(), *alg).run_parallel(workers);
            assert_eq!(
                &par.equivalence_key(),
                seq_key,
                "[{label}] {alg} parallel({workers}) diverged from sequential"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sds_is_duplication_free_on_random_scenarios(rs in random_scenarios()) {
        let scenario = build(&rs);
        let report = sde_core::run(&scenario, Algorithm::Sds);
        prop_assume!(!report.aborted);
        prop_assert_eq!(report.duplicate_states, 0, "{:?}", rs);
    }

    #[test]
    fn algorithms_agree_on_random_scenarios(rs in random_scenarios()) {
        let scenario = build(&rs);
        let mut engines: Vec<Engine> = Algorithm::ALL
            .iter()
            .map(|alg| Engine::new(scenario.clone(), *alg))
            .collect();
        for e in &mut engines {
            e.run_in_place();
        }
        // Skip rare cap-aborted COB runs: partial exploration cannot be
        // compared.
        prop_assume!(engines.iter().all(|e| {
            e.states().count() < scenario.state_cap
        }));
        let baseline = fingerprints(&engines[0]);
        for e in &engines[1..] {
            prop_assert_eq!(
                &fingerprints(e),
                &baseline,
                "{} diverged on {:?}",
                e.mapper().name(),
                rs
            );
            prop_assert!(e.mapper().check_invariants().is_none());
        }
        // Size ordering.
        let counts: Vec<usize> = engines.iter().map(|e| e.states().count()).collect();
        prop_assert!(counts[0] >= counts[1], "COB {} < COW {}", counts[0], counts[1]);
        prop_assert!(counts[1] >= counts[2], "COW {} < SDS {}", counts[1], counts[2]);
    }

    #[test]
    fn replays_never_fork_on_random_scenarios(rs in random_scenarios()) {
        let scenario = build(&rs);
        let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
        engine.run_in_place();
        prop_assume!(engine.states().count() < scenario.state_cap);
        let cases = sde_core::testgen::generate(&engine, 3);
        for case in &cases.cases {
            let preset = sde::vm::Preset::from_model(&case.model, engine.symbols());
            let replay = Engine::new(scenario.clone(), Algorithm::Sds)
                .with_preset(preset)
                .run();
            prop_assert_eq!(replay.total_states, scenario.node_count(), "{:?}", rs);
        }
    }
}
