//! Property-based end-to-end tests: random topologies, random failure
//! placements, random workload parameters — the paper's invariants must
//! hold on all of them.
//!
//! * SDS never produces duplicate states (§III-D);
//! * COW and SDS represent exactly the same dscenario sets as COB
//!   (correctness baseline, §III-A);
//! * state counts are ordered COB ≥ COW ≥ SDS;
//! * mapper bookkeeping stays internally consistent.

mod common;

use proptest::prelude::*;
use sde::prelude::*;
use sde_core::Engine;
use sde_os::apps::collect::{self, CollectConfig};

#[derive(Debug, Clone)]
struct RandomScenario {
    topology_kind: u8,
    k: u16,
    drop_mask: u64,
    packets: u16,
}

fn random_scenarios() -> impl Strategy<Value = RandomScenario> {
    (0u8..4, 3u16..7, any::<u64>(), 1u16..3).prop_map(|(topology_kind, k, drop_mask, packets)| {
        RandomScenario { topology_kind, k, drop_mask, packets }
    })
}

fn build(rs: &RandomScenario) -> Scenario {
    let topology = match rs.topology_kind {
        0 => Topology::line(rs.k),
        1 => Topology::ring(rs.k),
        2 => Topology::grid(2, rs.k.div_ceil(2)),
        _ => Topology::full_mesh(rs.k.min(4)),
    };
    let k = topology.len() as u16;
    let source = NodeId(k - 1);
    let sink = NodeId(0);
    let cfg = CollectConfig {
        source,
        sink,
        interval_ms: 1000,
        packet_count: rs.packets,
        strict_sink: false,
    };
    // Random subset of nodes may drop (excluding the source, which never
    // receives anything anyway).
    let drops: Vec<NodeId> = (0..k)
        .filter(|i| *i != source.0 && rs.drop_mask & (1 << (i % 64)) != 0)
        .map(NodeId)
        .collect();
    let failures = FailureConfig::new().with_drops(drops, 1);
    let programs = collect::programs(&topology, &cfg);
    Scenario::new(topology, programs)
        .with_failures(failures)
        .with_duration_ms(1000 * u64::from(rs.packets) + 2000)
        .with_history_tracking(true)
        .with_state_cap(60_000)
}

fn fingerprints(engine: &Engine) -> std::collections::BTreeSet<Vec<(u16, u64)>> {
    let mut out = std::collections::BTreeSet::new();
    for dscenario in engine.mapper().dscenarios() {
        let mut fp: Vec<(u16, u64)> = dscenario
            .iter()
            .filter_map(|id| engine.state(*id))
            .map(|s| (s.node.0, s.vm.path_digest()))
            .collect();
        fp.sort_unstable();
        out.insert(fp);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sds_is_duplication_free_on_random_scenarios(rs in random_scenarios()) {
        let scenario = build(&rs);
        let report = sde_core::run(&scenario, Algorithm::Sds);
        prop_assume!(!report.aborted);
        prop_assert_eq!(report.duplicate_states, 0, "{:?}", rs);
    }

    #[test]
    fn algorithms_agree_on_random_scenarios(rs in random_scenarios()) {
        let scenario = build(&rs);
        let mut engines: Vec<Engine> = Algorithm::ALL
            .iter()
            .map(|alg| Engine::new(scenario.clone(), *alg))
            .collect();
        for e in &mut engines {
            e.run_in_place();
        }
        // Skip rare cap-aborted COB runs: partial exploration cannot be
        // compared.
        prop_assume!(engines.iter().all(|e| {
            e.states().count() < scenario.state_cap
        }));
        let baseline = fingerprints(&engines[0]);
        for e in &engines[1..] {
            prop_assert_eq!(
                &fingerprints(e),
                &baseline,
                "{} diverged on {:?}",
                e.mapper().name(),
                rs
            );
            prop_assert!(e.mapper().check_invariants().is_none());
        }
        // Size ordering.
        let counts: Vec<usize> = engines.iter().map(|e| e.states().count()).collect();
        prop_assert!(counts[0] >= counts[1], "COB {} < COW {}", counts[0], counts[1]);
        prop_assert!(counts[1] >= counts[2], "COW {} < SDS {}", counts[1], counts[2]);
    }

    #[test]
    fn replays_never_fork_on_random_scenarios(rs in random_scenarios()) {
        let scenario = build(&rs);
        let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
        engine.run_in_place();
        prop_assume!(engine.states().count() < scenario.state_cap);
        let cases = sde_core::testgen::generate(&engine, 3);
        for case in &cases.cases {
            let preset = sde::vm::Preset::from_model(&case.model, engine.symbols());
            let replay = Engine::new(scenario.clone(), Algorithm::Sds)
                .with_preset(preset)
                .run();
            prop_assert_eq!(replay.total_states, scenario.node_count(), "{:?}", rs);
        }
    }
}
