//! Interrupted-vs-straight differential tests for the checkpoint/resume
//! engine: a run that is paused every K events, snapshotted, serialized
//! to bytes, deserialized, and resumed — possibly many times — must be
//! indistinguishable from a run that was never interrupted. "Indistinguishable"
//! means the [`RunReport::equivalence_key`] matches *and* the
//! deterministic trace JSONL is byte-identical, for every algorithm,
//! worker count, and pause cadence.
//!
//! The parallel engine only pauses at the serial-commit barrier between
//! virtual-timestamp batches, so `K = 1` there means "pause after every
//! batch", not after every event.

#[path = "common/grid.rs"]
mod grid;
#[path = "common/line.rs"]
mod line;
#[path = "common/ring.rs"]
mod ring;

use grid::grid_collect;
use line::line_collect;
use ring::ring_hello;
use sde::prelude::*;
use sde::trace::{to_jsonl, RingSink, TraceSink};
use std::sync::Arc;

/// Pause cadences: after every event, every few events, and a budget
/// large enough that most segments span a big chunk of the run.
const CADENCES: [u64; 3] = [1, 7, 997];

/// The three seed topologies of the matrix: a line with two symbolic
/// drops, the paper's grid with drops on the route, and a failure-free
/// ring (pure communication, no forking at delivery).
fn topologies() -> Vec<(&'static str, Scenario)> {
    vec![
        ("line4", line_collect(4, &[1, 2], 2, false)),
        ("grid3x3", grid_collect(3, 3, 3000, false)),
        ("ring5", ring_hello(5)),
    ]
}

/// Drives `engine` to completion under `budget`-sized segments,
/// performing a full snapshot→serialize→deserialize→resume round trip at
/// every pause (direct snapshot→resume after the first few, to keep the
/// quadratic-in-pauses byte shuffling bounded). Returns the number of
/// pauses taken and the finished engine.
fn run_interrupted(
    scenario: &Scenario,
    algorithm: Algorithm,
    workers: Option<usize>,
    every: u64,
    sink: Option<&Arc<RingSink>>,
) -> (usize, Engine) {
    let mut engine = Engine::new(scenario.clone(), algorithm);
    if let Some(sink) = sink {
        engine = engine.with_trace_sink(Arc::clone(sink) as Arc<dyn TraceSink>);
    }
    let mut pauses = 0usize;
    loop {
        let outcome = match workers {
            None => engine.run_until(Budget::events(every)),
            Some(w) => engine.run_until_parallel(w, Budget::events(every)),
        };
        if outcome == RunOutcome::Complete {
            return (pauses, engine);
        }
        let snap = if pauses < 3 {
            let bytes = engine.snapshot().to_bytes();
            EngineSnapshot::from_bytes(&bytes).expect("snapshot bytes must decode")
        } else {
            engine.snapshot()
        };
        engine = Engine::resume(scenario.clone(), &snap).expect("snapshot must resume");
        if let Some(sink) = sink {
            engine = engine.with_trace_sink(Arc::clone(sink) as Arc<dyn TraceSink>);
        }
        pauses += 1;
    }
}

#[test]
fn interrupted_serial_runs_match_straight_runs() {
    for (name, scenario) in topologies() {
        for algorithm in Algorithm::ALL {
            let straight = Engine::new(scenario.clone(), algorithm).run();
            for every in CADENCES {
                let (pauses, engine) = run_interrupted(&scenario, algorithm, None, every, None);
                if every == 1 {
                    assert!(pauses > 0, "[{name}] {algorithm}: run too small to pause");
                }
                assert_eq!(
                    engine.into_report().equivalence_key(),
                    straight.equivalence_key(),
                    "[{name}] {algorithm} serial run diverged when interrupted every {every}"
                );
            }
        }
    }
}

#[test]
fn interrupted_parallel_matrix_matches_straight_runs() {
    for (name, scenario) in topologies() {
        for algorithm in Algorithm::ALL {
            // The sequential, uninterrupted run is the baseline for the
            // whole worker matrix: parallel equivalence is already pinned
            // by `parallel_equivalence.rs`, so comparing against the
            // serial key makes this a strictly stronger statement.
            let straight = Engine::new(scenario.clone(), algorithm).run();
            for workers in [1usize, 2, 4] {
                for every in CADENCES {
                    let (pauses, engine) =
                        run_interrupted(&scenario, algorithm, Some(workers), every, None);
                    if every == 1 {
                        assert!(
                            pauses > 0,
                            "[{name}] {algorithm} w={workers}: run too small to pause"
                        );
                    }
                    assert_eq!(
                        engine.into_report().equivalence_key(),
                        straight.equivalence_key(),
                        "[{name}] {algorithm} w={workers} diverged when interrupted every {every}"
                    );
                }
            }
        }
    }
}

/// Straight-run trace baseline, no interruption. Serial and parallel
/// baselines differ (the parallel engine additionally emits `Speculate`
/// events), so each path is compared against its own kind; worker count
/// does not matter (pinned by `trace_determinism.rs`).
fn straight_jsonl(scenario: &Scenario, algorithm: Algorithm, workers: Option<usize>) -> String {
    let sink = Arc::new(RingSink::default());
    let engine = Engine::new(scenario.clone(), algorithm)
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    match workers {
        None => engine.run(),
        Some(w) => engine.run_parallel(w),
    };
    assert_eq!(sink.dropped(), 0, "trace ring must not evict in tests");
    to_jsonl(&sink.take(), true)
}

#[test]
fn interrupted_traces_are_byte_identical_to_straight_traces() {
    for (name, scenario) in topologies() {
        for algorithm in Algorithm::ALL {
            let baseline = straight_jsonl(&scenario, algorithm, None);
            assert!(
                !baseline.is_empty(),
                "[{name}] {algorithm} produced an empty trace"
            );

            // Serial, paused after every event and every 7 events: the
            // same shared sink stays attached across all segments, so the
            // concatenated stream must equal the uninterrupted one.
            for every in [1u64, 7] {
                let sink = Arc::new(RingSink::default());
                let (pauses, _) = run_interrupted(&scenario, algorithm, None, every, Some(&sink));
                assert!(pauses > 0, "[{name}] {algorithm}: run too small to pause");
                assert_eq!(sink.dropped(), 0, "trace ring must not evict in tests");
                assert_eq!(
                    to_jsonl(&sink.take(), true),
                    baseline,
                    "[{name}] {algorithm} serial trace diverged when interrupted every {every}"
                );
            }

            // Parallel at every worker count, paused at batch barriers.
            let parallel_baseline = straight_jsonl(&scenario, algorithm, Some(1));
            for workers in [1usize, 2, 4] {
                let sink = Arc::new(RingSink::default());
                run_interrupted(&scenario, algorithm, Some(workers), 7, Some(&sink));
                assert_eq!(sink.dropped(), 0, "trace ring must not evict in tests");
                assert_eq!(
                    to_jsonl(&sink.take(), true),
                    parallel_baseline,
                    "[{name}] {algorithm} w={workers} trace diverged across interruption"
                );
            }
        }
    }
}
