//! Snapshot codec robustness, property-tested: serialization is a fixed
//! point (`snapshot → bytes → decode → bytes` is byte-identical), and
//! `EngineSnapshot::from_bytes` never panics on malformed input — byte
//! flips, truncations, wrong magic, and unknown versions all surface as
//! typed [`SnapshotError`]s.

#[path = "common/seeded.rs"]
mod seeded;

use proptest::prelude::*;
use sde::prelude::*;
use seeded::scenario_from_seed;

/// A mid-run snapshot of a seed-derived scenario: pausing partway keeps
/// the queue, mapper groups, and forked states non-trivial so the codec
/// exercises every segment.
fn mid_run_snapshot(seed: u64, algorithm: Algorithm, pause_events: u64) -> EngineSnapshot {
    let (_label, scenario) = scenario_from_seed(seed);
    let mut engine = Engine::new(scenario, algorithm);
    engine.run_until(Budget::events(pause_events));
    engine.snapshot()
}

/// Recomputes the header's FNV-1a content digest over `bytes[20..]` and
/// patches it in place. Corruption tests use this to push mutated bytes
/// *past* the digest check, so the decoder's structural validation (not
/// just the checksum) is what must hold the line against panics.
fn patch_digest(bytes: &mut [u8]) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in &bytes[20..] {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    bytes[12..20].copy_from_slice(&h.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serialization_is_a_fixed_point(
        seed in any::<u64>(),
        alg_idx in 0usize..3,
        pause in 1u64..40,
    ) {
        let algorithm = Algorithm::ALL[alg_idx];
        let snap = mid_run_snapshot(seed, algorithm, pause);
        let bytes = snap.to_bytes();
        let decoded = EngineSnapshot::from_bytes(&bytes).expect("snapshot bytes must decode");
        prop_assert_eq!(
            &bytes,
            &decoded.to_bytes(),
            "decode → re-encode must be byte-identical"
        );
        prop_assert_eq!(snap.to_debug_json(), decoded.to_debug_json());
    }

    #[test]
    fn byte_flips_never_panic(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        xor in 1u8..255,
        fix_digest in any::<bool>(),
    ) {
        let bytes = mid_run_snapshot(seed, Algorithm::Sds, 9).to_bytes();
        let mut corrupted = bytes.clone();
        let pos = (pos_seed % corrupted.len() as u64) as usize;
        corrupted[pos] ^= xor;
        if fix_digest && corrupted.len() > 20 {
            // With the checksum patched, the decoder must survive the
            // corrupted payload on structural validation alone.
            patch_digest(&mut corrupted);
        }
        // Ok (benign flip) and Err (typed) are both fine; panicking is not.
        let _ = EngineSnapshot::from_bytes(&corrupted);
    }

    #[test]
    fn truncations_never_panic(seed in any::<u64>(), len_seed in any::<u64>()) {
        let bytes = mid_run_snapshot(seed, Algorithm::Cow, 9).to_bytes();
        let len = (len_seed % bytes.len() as u64) as usize;
        let mut truncated = bytes[..len].to_vec();
        if truncated.len() > 20 {
            patch_digest(&mut truncated);
        }
        prop_assert!(
            EngineSnapshot::from_bytes(&truncated).is_err(),
            "a truncated snapshot must never decode successfully"
        );
    }
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let mut bytes = mid_run_snapshot(42, Algorithm::Cob, 5).to_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        EngineSnapshot::from_bytes(&bytes),
        Err(SnapshotError::BadMagic)
    ));
    // Too short to even hold the magic: classified as truncated, not as
    // a foreign file.
    assert!(matches!(
        EngineSnapshot::from_bytes(b"short"),
        Err(SnapshotError::Codec(_))
    ));
    assert!(matches!(
        EngineSnapshot::from_bytes(b"not a snapshot at all"),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn unknown_version_is_a_typed_error() {
    let mut bytes = mid_run_snapshot(42, Algorithm::Cob, 5).to_bytes();
    // The version word sits at bytes 8..12, outside the content digest,
    // so no checksum patching is needed to reach the version check.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match EngineSnapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion(v)) => assert_eq!(v, 99),
        other => panic!("expected UnsupportedVersion(99), got {other:?}"),
    }
}

#[test]
fn corrupted_digest_is_a_typed_error() {
    let mut bytes = mid_run_snapshot(42, Algorithm::Cob, 5).to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        EngineSnapshot::from_bytes(&bytes),
        Err(SnapshotError::DigestMismatch)
    ));
}
