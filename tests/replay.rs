//! Test-case generation and concrete replay, end to end.
//!
//! The paper's §II-A promise: "symbolic execution automatically generates
//! concrete test cases for each explored execution path enabling
//! execution replay". These tests close the loop: solve a dscenario into
//! concrete inputs, replay the whole network with those inputs pinned,
//! and verify the replay is deterministic, unforked, and reproduces the
//! original observation (including distributed assertion failures).

#[path = "common/line.rs"]
mod line;

use line::line_collect;
use sde::prelude::*;
use sde_core::{testgen, Engine};
use sde_vm::Preset;

#[test]
fn every_test_case_replays_without_forking() {
    let scenario = line_collect(4, &[1, 2], 2, false);
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    engine.run_in_place();
    let report = testgen::generate(&engine, 64);
    assert!(!report.truncated);
    assert_eq!(report.unsolvable, 0);
    assert!(
        report.cases.len() >= 4,
        "two drop decisions → at least 4 dscenarios"
    );

    for case in &report.cases {
        let preset = Preset::from_model(&case.model, engine.symbols());
        let replay = Engine::new(scenario.clone(), Algorithm::Sds)
            .with_preset(preset)
            .run();
        assert_eq!(
            replay.total_states,
            scenario.node_count(),
            "case {}: concrete replay must not fork",
            case.id
        );
        assert_eq!(replay.duplicate_states, 0);
    }
}

#[test]
fn distributed_bug_witness_replays_the_bug() {
    let scenario = line_collect(4, &[1, 2], 3, true);
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    engine.run_in_place();

    let bug_states: Vec<_> = engine
        .states()
        .filter(|s| matches!(s.vm.status(), sde::vm::Status::Bugged(_)))
        .map(|s| s.id)
        .collect();
    assert!(!bug_states.is_empty(), "strict sink must fail under drops");

    let preset = testgen::preset_for(&engine, bug_states[0])
        .expect("bug state belongs to a feasible dscenario");
    assert!(
        !preset.is_empty(),
        "witness pins at least one drop decision"
    );

    let replay = Engine::new(scenario.clone(), Algorithm::Sds)
        .with_preset(preset)
        .run();
    assert!(
        replay.bugs.iter().any(|b| b.node == NodeId(0)),
        "replay must reproduce the sink assertion failure"
    );
    assert_eq!(replay.total_states, scenario.node_count());
}

#[test]
fn witnesses_work_from_every_algorithm() {
    let scenario = line_collect(3, &[1], 2, true);
    for alg in Algorithm::ALL {
        let mut engine = Engine::new(scenario.clone(), alg);
        engine.run_in_place();
        let bug = engine
            .states()
            .find(|s| matches!(s.vm.status(), sde::vm::Status::Bugged(_)))
            .map(|s| s.id)
            .expect("bug found");
        let preset = testgen::preset_for(&engine, bug).expect("witness");
        let replay = Engine::new(scenario.clone(), alg).with_preset(preset).run();
        assert!(!replay.bugs.is_empty(), "{alg}: bug must replay");
    }
}

#[test]
fn empty_preset_is_the_failure_free_run() {
    // All failure inputs default to 0 (no drop) → the sink receives
    // everything in order and nothing fails, even with the strict sink.
    let scenario = line_collect(4, &[1, 2], 3, true);
    let replay = Engine::new(scenario.clone(), Algorithm::Sds)
        .with_preset(Preset::new())
        .run();
    assert!(replay.bugs.is_empty());
    assert_eq!(replay.total_states, 4);
}

#[test]
fn replayed_sink_counters_match_the_model() {
    // Pick the dscenario where node 1 dropped (so the sink misses one
    // packet) and check the replayed sink's RECEIVED counter.
    let scenario = line_collect(3, &[1], 2, false);
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    engine.run_in_place();
    let cases = testgen::generate(&engine, 16);
    for case in &cases.cases {
        let dropped: u64 = case
            .nodes
            .iter()
            .flat_map(|n| n.inputs.iter())
            .filter(|(name, v)| name == "drop" && *v == 1)
            .count() as u64;
        let preset = Preset::from_model(&case.model, engine.symbols());
        let mut replay_engine = Engine::new(scenario.clone(), Algorithm::Sds).with_preset(preset);
        replay_engine.run_in_place();
        let sink = replay_engine
            .states()
            .find(|s| s.node == NodeId(0))
            .expect("sink state");
        let received = sink
            .vm
            .memory_byte(sde::os::layout::RECEIVED)
            .as_const()
            .expect("concrete run");
        assert_eq!(
            received,
            2 - dropped,
            "case {}: sink received {} with {} drops",
            case.id,
            received,
            dropped
        );
    }
}

#[test]
fn parallel_and_sequential_testgen_agree_on_scenarios() {
    let scenario = line_collect(4, &[1, 2], 2, false);
    let mut engine = Engine::new(scenario, Algorithm::Cow);
    engine.run_in_place();
    let seq = testgen::generate(&engine, 1000);
    let par = sde::core::parallel::generate_parallel(&engine, 1000, 3);
    assert_eq!(seq.cases.len(), par.cases.len());
    assert_eq!(seq.dscenarios_seen, par.dscenarios_seen);
}

#[test]
fn strict_replay_flags_unkeyed_failure_decisions() {
    // An empty strict preset cannot answer the engine-level drop
    // decision: the replay must report it as an UnkeyedInput bug instead
    // of silently assuming "no drop" (which is exactly what the *lenient*
    // empty preset is for — see `empty_preset_is_the_failure_free_run`).
    let scenario = line_collect(3, &[0, 1], 1, false);
    let report = Engine::new(scenario.clone(), Algorithm::Cob)
        .with_preset(Preset::new().with_strict())
        .run();
    assert!(
        report
            .bugs
            .iter()
            .any(|b| matches!(b.report.kind, sde::vm::BugKind::UnkeyedInput)),
        "strict replay with no pinned drop decision must flag UnkeyedInput, got {:?}",
        report.bugs
    );

    // A complete assignment (drawn from a real dscenario model) replays
    // strictly with no bug and no forks: strict mode only fires on
    // genuinely unkeyed inputs.
    let mut engine = Engine::new(scenario.clone(), Algorithm::Sds);
    engine.run_in_place();
    let cases = testgen::generate(&engine, 64);
    let complete = cases.cases.iter().find(|c| {
        // Only models that constrain every failure decision replay
        // strictly without misses; dscenarios that never reached a
        // decision leave it unconstrained.
        c.model.len() == engine.symbols().len()
    });
    if let Some(case) = complete {
        let preset = Preset::from_model(&case.model, engine.symbols()).with_strict();
        let replay = Engine::new(scenario.clone(), Algorithm::Cob)
            .with_preset(preset)
            .run();
        assert!(
            replay.bugs.is_empty(),
            "a complete strict assignment must replay bug-free: {:?}",
            replay.bugs
        );
        assert_eq!(replay.total_states, scenario.node_count());
    }
}

#[test]
fn strict_replay_flags_unkeyed_program_inputs() {
    // Same contract one layer down: a `make_symbolic` the preset does not
    // pin is a bug under strict replay (and a silent 0 under lenient).
    use sde::os::apps::sense::{self, SenseConfig};
    let topology = Topology::line(2);
    let cfg = SenseConfig {
        source: NodeId(1),
        sink: NodeId(0),
        interval_ms: 1000,
        packet_count: 1,
        max_reading: 7,
        levels: 1,
        parity_guard: false,
    };
    let programs = sense::programs(&topology, &cfg);
    let scenario = Scenario::new(topology, programs).with_duration_ms(3000);

    let strict = Engine::new(scenario.clone(), Algorithm::Cob)
        .with_preset(Preset::new().with_strict())
        .run();
    let unkeyed: Vec<_> = strict
        .bugs
        .iter()
        .filter(|b| matches!(b.report.kind, sde::vm::BugKind::UnkeyedInput))
        .collect();
    assert!(
        !unkeyed.is_empty(),
        "strict replay must flag the unpinned `reading`: {:?}",
        strict.bugs
    );
    assert!(
        unkeyed.iter().all(|b| b.node == NodeId(1)),
        "only the source mints `reading`: {unkeyed:?}"
    );

    let lenient = Engine::new(scenario, Algorithm::Cob)
        .with_preset(Preset::new())
        .run();
    assert!(
        lenient.bugs.is_empty(),
        "the lenient empty preset still replays as reading = 0: {:?}",
        lenient.bugs
    );
}
