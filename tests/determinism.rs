//! Determinism: two runs of the same scenario under the same algorithm
//! must explore identical state sets. Replay correctness (and the whole
//! "concrete test case" story, §II-A) depends on it.

#[path = "common/grid.rs"]
mod grid;
#[path = "common/line.rs"]
mod line;

use grid::grid_collect;
use line::line_collect;
use sde::prelude::*;
use sde_core::Engine;
use std::collections::BTreeSet;

fn state_fingerprint(engine: &Engine) -> BTreeSet<(u16, u64, u64)> {
    engine
        .states()
        .map(|s| (s.node.0, s.vm.path_digest(), s.history.digest()))
        .collect()
}

#[test]
fn repeated_runs_are_identical() {
    for alg in Algorithm::ALL {
        let scenario = grid_collect(3, 3, 5000, false);
        let mut a = Engine::new(scenario.clone(), alg);
        let mut b = Engine::new(scenario, alg);
        a.run_in_place();
        b.run_in_place();
        assert_eq!(
            state_fingerprint(&a),
            state_fingerprint(&b),
            "{alg}: non-deterministic exploration"
        );
        assert_eq!(a.states().count(), b.states().count());
        assert_eq!(a.mapper().group_count(), b.mapper().group_count());
    }
}

#[test]
fn reports_are_reproducible_modulo_wall_clock() {
    let scenario = line_collect(4, &[1, 2], 2, false);
    let r1 = sde_core::run(&scenario, Algorithm::Sds);
    let r2 = sde_core::run(&scenario, Algorithm::Sds);
    assert_eq!(r1.total_states, r2.total_states);
    assert_eq!(r1.packets, r2.packets);
    assert_eq!(r1.events, r2.events);
    assert_eq!(r1.instructions, r2.instructions);
    assert_eq!(r1.groups, r2.groups);
    assert_eq!(r1.final_bytes, r2.final_bytes);
}

#[test]
fn testgen_is_reproducible() {
    let scenario = line_collect(4, &[1, 2], 2, false);
    let mut a = Engine::new(scenario.clone(), Algorithm::Sds);
    let mut b = Engine::new(scenario, Algorithm::Sds);
    a.run_in_place();
    b.run_in_place();
    let cases_a = sde_core::testgen::generate(&a, 100);
    let cases_b = sde_core::testgen::generate(&b, 100);
    assert_eq!(cases_a.cases.len(), cases_b.cases.len());
    let key = |c: &sde_core::testgen::TestCase| {
        let mut v: Vec<String> = c
            .nodes
            .iter()
            .flat_map(|n| {
                n.inputs
                    .iter()
                    .map(|(k, val)| format!("{}:{k}={val}", n.node))
            })
            .collect();
        v.sort();
        v.join(",")
    };
    let mut ka: Vec<String> = cases_a.cases.iter().map(key).collect();
    let mut kb: Vec<String> = cases_b.cases.iter().map(key).collect();
    ka.sort();
    kb.sort();
    assert_eq!(ka, kb);
}

#[test]
fn parallel_run_all_is_deterministic_per_algorithm() {
    let scenario = line_collect(3, &[1], 2, false);
    let parallel = sde_core::parallel::run_all(&scenario, &Algorithm::ALL);
    for (alg, report) in Algorithm::ALL.iter().zip(&parallel) {
        let sequential = sde_core::run(&scenario, *alg);
        assert_eq!(report.total_states, sequential.total_states, "{alg}");
        assert_eq!(report.groups, sequential.groups, "{alg}");
    }
}
